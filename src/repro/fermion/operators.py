"""Second-quantized fermionic operators.

A :class:`FermionOperator` is a complex-linear combination of monomials of
creation (``a†_i``) and annihilation (``a_i``) operators.  Monomials are
tuples of ``(mode, is_creation)`` factors in left-to-right application
order, e.g. ``a†_0 a_1`` is ``((0, True), (1, False))``.

The class supports the ring operations, hermitian conjugation and
normal ordering under the canonical anticommutation relations (CARs,
Eq. 1 of the paper): ``{a_i, a_j} = {a†_i, a†_j} = 0``,
``{a_i, a†_j} = δ_ij``.
"""

from __future__ import annotations

from typing import Iterator, Mapping

#: A single creation/annihilation factor: (mode index, is_creation).
Factor = tuple[int, bool]
#: A product of factors, applied left to right.
Monomial = tuple[Factor, ...]

_TOLERANCE = 1e-12


class FermionOperator:
    """A linear combination of creation/annihilation monomials."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, complex] | None = None):
        self._terms: dict[Monomial, complex] = {}
        if terms:
            for monomial, coefficient in terms.items():
                self._add_term(tuple(monomial), coefficient)

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero(cls) -> "FermionOperator":
        return cls()

    @classmethod
    def identity(cls, coefficient: complex = 1.0) -> "FermionOperator":
        return cls({(): coefficient})

    @classmethod
    def creation(cls, mode: int) -> "FermionOperator":
        """The creation operator ``a†_mode``."""
        return cls({((mode, True),): 1.0})

    @classmethod
    def annihilation(cls, mode: int) -> "FermionOperator":
        """The annihilation operator ``a_mode``."""
        return cls({((mode, False),): 1.0})

    @classmethod
    def number(cls, mode: int) -> "FermionOperator":
        """The occupation-number operator ``a†_mode a_mode``."""
        return cls({((mode, True), (mode, False)): 1.0})

    @classmethod
    def from_monomial(cls, factors: Monomial, coefficient: complex = 1.0) -> "FermionOperator":
        return cls({tuple(factors): coefficient})

    # -- bookkeeping ----------------------------------------------------------

    def _add_term(self, monomial: Monomial, coefficient: complex) -> None:
        updated = self._terms.get(monomial, 0j) + coefficient
        if abs(updated) <= _TOLERANCE:
            self._terms.pop(monomial, None)
        else:
            self._terms[monomial] = updated

    def items(self) -> Iterator[tuple[Monomial, complex]]:
        return iter(self._terms.items())

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[tuple[Monomial, complex]]:
        return self.items()

    @property
    def is_zero(self) -> bool:
        return not self._terms

    @property
    def max_mode(self) -> int:
        """Largest mode index appearing in any monomial (-1 when none)."""
        indices = [mode for monomial in self._terms for mode, _ in monomial]
        return max(indices, default=-1)

    @property
    def num_modes(self) -> int:
        """Minimal mode count able to host this operator."""
        return self.max_mode + 1

    def coefficient(self, monomial: Monomial) -> complex:
        return self._terms.get(tuple(monomial), 0j)

    # -- algebra ------------------------------------------------------------------

    def __add__(self, other: "FermionOperator") -> "FermionOperator":
        if not isinstance(other, FermionOperator):
            return NotImplemented
        result = FermionOperator(self._terms)
        for monomial, coefficient in other.items():
            result._add_term(monomial, coefficient)
        return result

    def __sub__(self, other: "FermionOperator") -> "FermionOperator":
        return self + (other * -1.0)

    def __mul__(self, other) -> "FermionOperator":
        if isinstance(other, FermionOperator):
            result = FermionOperator()
            for left, left_coefficient in self._terms.items():
                for right, right_coefficient in other._terms.items():
                    result._add_term(left + right, left_coefficient * right_coefficient)
            return result
        if isinstance(other, (int, float, complex)):
            return FermionOperator(
                {monomial: coefficient * other for monomial, coefficient in self._terms.items()}
            )
        return NotImplemented

    def __rmul__(self, other) -> "FermionOperator":
        if isinstance(other, (int, float, complex)):
            return self * other
        return NotImplemented

    def __neg__(self) -> "FermionOperator":
        return self * -1.0

    def hermitian_conjugate(self) -> "FermionOperator":
        """Reverse each monomial, flip daggers, conjugate coefficients."""
        conjugated: dict[Monomial, complex] = {}
        for monomial, coefficient in self._terms.items():
            flipped = tuple((mode, not is_creation) for mode, is_creation in reversed(monomial))
            conjugated[flipped] = conjugated.get(flipped, 0j) + coefficient.conjugate()
        return FermionOperator(conjugated)

    def is_hermitian(self, tolerance: float = 1e-9) -> bool:
        """Compare normal-ordered forms of the operator and its conjugate."""
        difference = self.normal_ordered() - self.hermitian_conjugate().normal_ordered()
        return all(abs(c) <= tolerance for _, c in difference.items())

    # -- normal ordering --------------------------------------------------------------

    def normal_ordered(self) -> "FermionOperator":
        """Rewrite with all creations (descending mode) left of annihilations
        (descending mode), using the CARs.  The result is a canonical form:
        two operators are equal iff their normal-ordered terms match.
        """
        result = FermionOperator()
        worklist: list[tuple[Monomial, complex]] = list(self._terms.items())
        while worklist:
            monomial, coefficient = worklist.pop()
            rewritten = _normal_order_step(monomial)
            if rewritten is None:
                result._add_term(monomial, coefficient)
                continue
            for new_monomial, factor in rewritten:
                worklist.append((new_monomial, coefficient * factor))
        return result

    def __repr__(self) -> str:
        if not self._terms:
            return "FermionOperator(0)"
        parts = []
        for monomial, coefficient in sorted(self._terms.items()):
            body = " ".join(f"a{'†' if dag else ''}_{mode}" for mode, dag in monomial) or "1"
            parts.append(f"({coefficient:.6g})*{body}")
        return "FermionOperator(" + " + ".join(parts) + ")"


def _normal_order_step(monomial: Monomial) -> list[tuple[Monomial, complex]] | None:
    """One rewriting step toward normal order, or ``None`` if already ordered.

    Ordering: creations before annihilations; within each block, strictly
    descending mode index (repeated equal factors vanish by nilpotency).
    """
    for position in range(len(monomial) - 1):
        (left_mode, left_dag), (right_mode, right_dag) = monomial[position], monomial[position + 1]
        prefix, suffix = monomial[:position], monomial[position + 2:]
        if not left_dag and right_dag:
            # a_i a†_j = δ_ij − a†_j a_i
            swapped = prefix + ((right_mode, True), (left_mode, False)) + suffix
            outcomes = [(swapped, -1.0 + 0j)]
            if left_mode == right_mode:
                outcomes.append((prefix + suffix, 1.0 + 0j))
            return outcomes
        if left_dag == right_dag:
            if left_mode == right_mode:
                return []  # a a or a† a† on the same mode: zero by nilpotency
            if left_mode < right_mode:
                swapped = prefix + (monomial[position + 1], monomial[position]) + suffix
                return [(swapped, -1.0 + 0j)]
    return None
