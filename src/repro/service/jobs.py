"""Job records of the compilation service.

A :class:`JobRecord` is the service-side life of one deduplicated
compilation: its fingerprint key doubles as the job id, so two clients
submitting equivalent work — same modes, config, Hamiltonian support,
method, device shape — are handed the *same* record and the compile runs
once.  Records move through a tiny state machine::

    queued ──► running ──► done
      ▲            │
      │            ├─────► failed      (resubmitting a failed key requeues it)
      └────────────┘
        retrying: a *retryable* error (worker killed, spawn failure) is
        requeued by the daemon with backoff until ``max_attempts``; the
        retried attempt warm-starts from the descent checkpoint.

``done``/``failed`` carry the terminal :mod:`repro.store.batch` outcome
status (``compiled`` / ``warm-start`` / ``cache-hit`` / ``degraded`` /
``error``), so the wire format exposes both *where* a job is and *how*
it got there.  ``degraded`` is a ``done`` job whose deadline expired
mid-descent — the result is the valid best encoding found in time.

The wire form of a finished record embeds the full result under the
versioned result schema of :mod:`repro.encodings.serialization` — the
same document the on-disk cache stores — so a polled result decodes to a
first-class :class:`~repro.core.pipeline.CompilationResult`, identical
to what a direct in-process ``compile()`` would have returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.store.batch import CompileJob, JobOutcome

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.pipeline import CompilationResult

#: Job states, in lifecycle order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED)

#: States in which a job still occupies queue capacity.
ACTIVE_STATES = (QUEUED, RUNNING)


def job_device_label(job: CompileJob) -> str | None:
    """The job's device as a wire-safe string (``None`` = device-free)."""
    if job.device is None:
        return None
    if isinstance(job.device, str):
        return job.device
    return job.device.name


@dataclass
class JobRecord:
    """One deduplicated compilation tracked by the service.

    Attributes:
        id: the job's fingerprint key (:func:`repro.store.batch
            .compile_job_key`) — content-addressed, so it is also the
            dedup identity and the cache key.
        job: the translated :class:`~repro.store.batch.CompileJob`.
        status: one of :data:`JOB_STATES`.
        outcome: terminal :data:`repro.store.batch.JOB_STATUSES` entry
            (``None`` until the job finishes).
        error: failure message when ``status == "failed"``.
        cache_error: set when the compile succeeded but persisting it did
            not (the job is still ``done``).
        result: the decoded result for finished jobs.
        submissions: how many submissions collapsed onto this record.
        submitted_at / started_at / finished_at: wall-clock timestamps
            (``time.time``); ``elapsed_s`` is the solver-side duration.
    """

    id: str
    job: CompileJob
    status: str = QUEUED
    outcome: str | None = None
    error: str | None = None
    cache_error: str | None = None
    result: "CompilationResult | None" = None
    submissions: int = 1
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    elapsed_s: float = 0.0
    #: Dispatch generation — bumped when a failed record is requeued, so
    #: a stale outcome from a superseded attempt cannot finish the fresh one.
    attempt: int = field(default=0)
    #: Supervised-retry count: how many times the daemon requeued this
    #: record after a retryable failure (distinct from ``attempt``, which
    #: also counts client resubmissions of a failed key).
    retries: int = field(default=0)

    @property
    def finished(self) -> bool:
        return self.status in (DONE, FAILED)

    def apply_outcome(self, outcome: JobOutcome, finished_at: float) -> None:
        """Fold a batch outcome into the record (terminal transition)."""
        self.outcome = outcome.status
        self.error = outcome.error
        self.cache_error = outcome.cache_error
        self.result = outcome.result
        self.elapsed_s = outcome.elapsed_s
        self.finished_at = finished_at
        self.status = FAILED if outcome.status == "error" else DONE

    def to_wire(self, include_result: bool = True) -> dict:
        """The record's JSON form (``GET /jobs/<id>``; summaries omit the
        result payload)."""
        result = self.result
        data = {
            "id": self.id,
            "status": self.status,
            "label": self.job.display,
            "method": self.job.method,
            "modes": self.job.modes,
            "device": job_device_label(self.job),
            "seed": self.job.seed,
            "outcome": self.outcome,
            "error": self.error,
            "cache_error": self.cache_error,
            "submissions": self.submissions,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_s": self.elapsed_s,
            "weight": None if result is None else result.weight,
            "proved_optimal": None if result is None else result.proved_optimal,
            "retries": self.retries,
            "degraded": False if result is None
            else getattr(result, "degraded", False),
        }
        if include_result and result is not None:
            from repro.encodings.serialization import result_to_dict

            data["result"] = result_to_dict(result)
        return data
