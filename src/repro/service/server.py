"""JSON-over-HTTP face of the compilation service (stdlib only).

Endpoints::

    POST /jobs            submit a job spec; 200 with the job record
                          (``deduplicated`` flags a collapsed submission),
                          400 malformed spec, 429 queue full (with a
                          ``Retry-After`` hint derived from the measured
                          drain rate), 503 draining
    GET  /jobs            all job summaries (no result payloads)
    GET  /jobs/<id>       one record, full result included once done
                          (``?result=0`` omits it); any unique id prefix;
                          evicted-but-cached ids are re-answered from the
                          cache instead of 404ing
    GET  /jobs/<id>/proof proof metadata + the stored DRAT trace (404
                          when the job exists but captured no proof)
    GET  /jobs/<id>/progress  live progress snapshot (current bound,
                          conflicts, conflicts/s, rung ETA) for a
                          running job; last-known state once finished
    GET  /jobs/<id>/forensics  flight-recorder dump of a failed job
                          (breadcrumbs, open spans, metrics, traceback)
    GET  /events          the progress event feed; ``?since=<seq>``
                          resumes from a cursor, ``?timeout=<s>``
                          long-polls (capped) for the first new event
    GET  /healthz         liveness + queue depth; ``status`` turns
                          ``degraded`` (still 200) above the high-water
                          mark so balancers can shed load early
    GET  /stats           counters, per-state tallies, cache stats
    GET  /metrics         the telemetry registry, Prometheus text format
    GET  /debug/trace/<id>  a finished job's span events (JSON)
    POST /shutdown        begin graceful shutdown ({"drain": false} also
                          cancels queued jobs); polls keep working while
                          running jobs finish, then the server exits

Transport choices: :class:`ThreadingHTTPServer` gives one thread per
in-flight request — submissions and polls are file-read-or-less cheap,
the actual solving lives in the service's worker processes — and every
response is ``application/json`` with an ``error`` field on failures, so
clients never parse HTML tracebacks.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro import chaos
from repro.service.daemon import CompilationService, ServiceRejection

#: Default port of ``repro serve`` / ``repro submit``.
DEFAULT_PORT = 8765

#: Upper bound on ``GET /events?timeout=`` long-polls (seconds).
_MAX_EVENT_POLL_S = 30.0

#: Largest request body the server will read (a job spec is < 1 KiB;
#: anything bigger is a client bug, not a job).
_MAX_BODY_BYTES = 1 << 20


class ServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`CompilationService`.

    ``port=0`` binds an ephemeral port (tests and benchmarks);
    :attr:`url` reports the resolved address either way.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: CompilationService,
                 verbose: bool = False):
        super().__init__(address, _ServiceRequestHandler)
        self.service = service
        self.verbose = verbose
        self._shutdown_started = False
        self._shutdown_lock = threading.Lock()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        display = "127.0.0.1" if host in ("0.0.0.0", "") else host
        return f"http://{display}:{port}"

    def request_shutdown(self, drain: bool = True) -> None:
        """Begin graceful shutdown without blocking the caller.

        Intake stops immediately (503), the dispatcher drains, and a
        helper thread stops ``serve_forever`` once the last job is done —
        so clients can keep polling their jobs for the whole tail.
        Idempotent: repeat calls only tighten ``drain``.
        """
        self.service.shutdown(drain=drain)
        with self._shutdown_lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
        threading.Thread(
            target=self._finish_shutdown, name="repro-service-shutdown",
            daemon=True,
        ).start()

    def _finish_shutdown(self) -> None:
        self.service.join()
        self.shutdown()

    def serve_until_stopped(self) -> None:
        """Run until a shutdown request (HTTP or signal) completes."""
        try:
            self.serve_forever()
        finally:
            self.service.shutdown()
            self.service.join()
            self.server_close()


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------------

    @property
    def service(self) -> CompilationService:
        return self.server.service

    def _send_json(self, payload: dict, status: int = 200,
                   headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int,
                         retry_after_s: float | None = None) -> None:
        headers = None
        if retry_after_s is not None:
            headers = {"Retry-After": str(int(math.ceil(retry_after_s)))}
        self._send_json({"error": message}, status=status, headers=headers)

    def _chaos_tripped(self) -> bool:
        """The ``http.handler`` fault point: a tripped request answers
        503 + ``Retry-After: 1`` — the shape of a transient front-end
        failure, which the client's retry loop is expected to absorb."""
        try:
            chaos.inject("http.handler", telemetry=self.service.telemetry)
        except chaos.ChaosFault as fault:
            self._send_error_json(str(fault), 503, retry_after_s=1)
            return True
        return False

    def _send_text(self, text: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict | None:
        """The request body as JSON, or ``None`` after a 400 was sent."""
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self._send_error_json("request body too large", 413)
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as error:
            self._send_error_json(f"invalid JSON body: {error}", 400)
            return None
        if not isinstance(data, dict):
            self._send_error_json("request body must be a JSON object", 400)
            return None
        return data

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self._chaos_tripped():
            return
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._send_json(self.service.healthz())
        elif path == "/stats":
            self._send_json(self.service.stats_wire())
        elif path == "/metrics":
            self._send_text(self.service.metrics_text())
        elif path == "/jobs":
            self._send_json({"jobs": self.service.jobs_wire()})
        elif path == "/events":
            self._get_events(query)
        elif path.startswith("/jobs/") and path.endswith("/proof"):
            self._get_proof(path[len("/jobs/"):-len("/proof")])
        elif path.startswith("/jobs/") and path.endswith("/progress"):
            self._get_progress(path[len("/jobs/"):-len("/progress")])
        elif path.startswith("/jobs/") and path.endswith("/forensics"):
            self._get_forensics(path[len("/jobs/"):-len("/forensics")])
        elif path.startswith("/jobs/"):
            self._get_job(path[len("/jobs/"):], query)
        elif path.startswith("/debug/trace/"):
            self._get_trace(path[len("/debug/trace/"):])
        else:
            self._send_error_json(f"no such endpoint: {path}", 404)

    def _get_events(self, query: str) -> None:
        params = parse_qs(query)

        def _number(name, cast, fallback):
            try:
                return cast(params[name][0])
            except (KeyError, IndexError, ValueError):
                return fallback

        since = _number("since", int, 0)
        # Long-poll bound: each waiting request pins one handler thread,
        # so the server, not the client, decides the worst case.
        timeout = min(_number("timeout", float, 0.0), _MAX_EVENT_POLL_S)
        limit = max(1, min(_number("limit", int, 500), 5000))
        self._send_json(self.service.events_wire(
            since=since, timeout=timeout, limit=limit
        ))

    def _get_progress(self, job_id: str) -> None:
        try:
            payload = self.service.progress_wire(job_id)
        except ServiceRejection as rejection:  # ambiguous prefix
            self._send_error_json(str(rejection), rejection.http_status)
            return
        if payload is None:
            self._send_error_json(f"no such job: {job_id!r}", 404)
            return
        self._send_json(payload)

    def _get_forensics(self, job_id: str) -> None:
        try:
            payload = self.service.forensics_wire(job_id)
        except ServiceRejection as rejection:  # ambiguous prefix
            self._send_error_json(str(rejection), rejection.http_status)
            return
        if payload is None:
            self._send_error_json(
                f"no forensics for job: {job_id!r} (dumps exist only for "
                "failed jobs still in the registry)", 404
            )
            return
        self._send_json(payload)

    def _get_proof(self, job_id: str) -> None:
        try:
            payload = self.service.proof_wire(job_id)
        except ServiceRejection as rejection:  # ambiguous prefix
            self._send_error_json(str(rejection), rejection.http_status)
            return
        if payload is None:
            self._send_error_json(f"no such job: {job_id!r}", 404)
            return
        if payload.get("proof") is None:
            self._send_error_json(
                f"job {job_id!r} captured no proof (submit with "
                '{"config": {"proof": true}})', 404
            )
            return
        self._send_json(payload)

    def _get_trace(self, job_id: str) -> None:
        try:
            payload = self.service.trace_wire(job_id)
        except ServiceRejection as rejection:  # ambiguous prefix
            self._send_error_json(str(rejection), rejection.http_status)
            return
        if payload is None:
            self._send_error_json(f"no trace for job: {job_id!r}", 404)
            return
        self._send_json(payload)

    def _get_job(self, job_id: str, query: str) -> None:
        include_result = "result=0" not in query
        try:
            payload = self.service.lookup_wire(
                job_id, include_result=include_result
            )
        except ServiceRejection as rejection:  # ambiguous prefix
            self._send_error_json(str(rejection), rejection.http_status)
            return
        if payload is None:
            self._send_error_json(f"no such job: {job_id!r}", 404)
            return
        self._send_json(payload)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self._chaos_tripped():
            return
        path = self.path.partition("?")[0]
        if path == "/jobs":
            self._post_job()
        elif path == "/shutdown":
            self._post_shutdown()
        else:
            self._send_error_json(f"no such endpoint: {path}", 404)

    def _post_job(self) -> None:
        spec = self._read_json()
        if spec is None:
            return
        try:
            record, deduplicated = self.service.submit(spec)
        except ServiceRejection as rejection:
            self._send_error_json(
                str(rejection), rejection.http_status,
                retry_after_s=getattr(rejection, "retry_after_s", None),
            )
            return
        except (ValueError, TypeError) as error:
            # TypeError covers wrong-typed (but valid-JSON) spec fields
            # that slip past the key checks — still the client's bug,
            # still a 400 naming it, never a dropped connection.
            self._send_error_json(str(error), 400)
            return
        payload = self.service.record_wire(record, include_result=False)
        payload["deduplicated"] = deduplicated
        self._send_json(payload)

    def _post_shutdown(self) -> None:
        body = self._read_json()
        if body is None:
            return
        drain = bool(body.get("drain", True))
        counts = self.service.counts()
        self.server.request_shutdown(drain=drain)
        self._send_json({
            "ok": True,
            "state": self.service.state,
            "drain": drain,
            "queued": counts.get("queued", 0),
            "running": counts.get("running", 0),
        })
