"""Compilation service: an async job-queue daemon over the batch engine.

The long-lived front door the one-shot CLI lacked.  ``repro serve``
exposes a JSON-over-HTTP API whose jobs are deduplicated by the same
fingerprints the cache uses, answered synchronously on cache hits, and
drained through the parallel batch executor otherwise:

* :mod:`repro.service.jobs` — :class:`JobRecord`, the per-fingerprint
  job lifecycle (``queued → running → done | failed``) and wire form.
* :mod:`repro.service.daemon` — :class:`CompilationService`, the queue,
  dedup, backpressure, dispatcher thread, and graceful drain.
* :mod:`repro.service.server` — :class:`ServiceServer`, the stdlib
  threaded HTTP layer (``POST /jobs``, ``GET /jobs[/<id>]``,
  ``GET /healthz``, ``GET /stats``, ``POST /shutdown``).
* :mod:`repro.service.client` — :class:`ServiceClient`, the typed
  client every CLI verb and example script drives.

See ``docs/ARCHITECTURE.md`` ("The service layer") for the request
lifecycle diagram.
"""

from repro.service.client import (
    SERVICE_URL_ENV,
    JobFailedError,
    ServiceClient,
    ServiceError,
    WaitTimeout,
    service_url,
)
from repro.service.daemon import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_MAX_RECORDS,
    DEFAULT_QUEUE_LIMIT,
    AmbiguousJobIdError,
    CompilationService,
    QueueFullError,
    ServiceRejection,
    ServiceStats,
    ServiceUnavailableError,
)
from repro.service.jobs import (
    ACTIVE_STATES,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    JobRecord,
)
from repro.service.server import DEFAULT_PORT, ServiceServer

__all__ = [
    "ACTIVE_STATES",
    "AmbiguousJobIdError",
    "CompilationService",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_MAX_RECORDS",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_LIMIT",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "JobFailedError",
    "JobRecord",
    "QUEUED",
    "QueueFullError",
    "RUNNING",
    "SERVICE_URL_ENV",
    "ServiceClient",
    "ServiceError",
    "ServiceRejection",
    "ServiceServer",
    "ServiceStats",
    "ServiceUnavailableError",
    "WaitTimeout",
    "service_url",
]
