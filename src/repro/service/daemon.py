"""The compilation service: an async job queue over the batch engine.

:class:`CompilationService` is the long-lived core behind ``repro
serve``.  It accepts plain-data job specs (the grammar of
:func:`repro.store.batch.job_from_spec`), deduplicates them by
fingerprint, answers already-final work synchronously from the
:class:`~repro.store.cache.CompilationCache`, and drains everything else
through one persistent :class:`~repro.parallel.executor
.ProcessBatchExecutor` worker pool, one job per worker slot.

Design points, in the order a submission meets them:

* **Dedup is identity.**  The fingerprint key *is* the job id.  A second
  submission of equivalent work — while the first is queued, running, or
  already done — returns the same record and never compiles twice.
* **Cache hits are synchronous.**  A final cached result turns the
  submission into a ``done`` record before ``POST /jobs`` even returns;
  warm-startable (unproved) entries still go through a worker, which
  seeds its descent from them.  The cache read happens *outside* the
  service lock, so polls and health checks never stall behind disk I/O.
* **Backpressure is explicit.**  At most ``queue_limit`` jobs may be
  active (queued + running); beyond that :meth:`submit` raises
  :class:`QueueFullError`, which the HTTP layer maps to 429.  The paper's
  compile times are minutes-to-hours per UNSAT-proved optimum — an
  unbounded queue would just hide an overload until memory ran out.
* **No head-of-line blocking.**  The dispatcher hands out one job per
  free worker slot the moment both exist; a slow descent occupies its
  slot and nothing else.  Short jobs submitted behind it finish first,
  and their polls say so immediately (the executor's ``on_outcome`` hook
  finalizes each record the instant its job resolves).
* **Failures are isolated.**  A job that blows up inside a worker marks
  only its own record ``failed``; a hard worker crash breaks at most the
  jobs in flight on the broken pool, and the executor replaces that pool
  before the next dispatch.  Resubmitting a failed key requeues a fresh
  attempt.
* **Retryable failures are supervised.**  Outcomes whose error names
  infrastructure rather than the job (a killed worker, a spawn failure —
  :attr:`repro.store.batch.JobOutcome.retryable`) are requeued
  automatically with exponential backoff plus deterministic jitter, up
  to ``max_attempts`` total attempts.  The retried attempt shares the
  failed one's fingerprint, so it warm-starts from the descent
  checkpoint its predecessor left in the cache instead of re-proving
  every bound.  Deterministic failures (a job exception) stay final on
  the first attempt.
* **Memory is bounded.**  Finished records beyond ``max_records`` are
  evicted oldest-first (their results live in the cache; resubmitting an
  evicted key is answered as a synchronous cache hit), so a long-lived
  daemon's registry cannot grow without bound.
* **Shutdown drains.**  ``shutdown(drain=True)`` stops intake (503),
  finishes every accepted job, then lets the dispatcher exit;
  ``drain=False`` also cancels the still-queued jobs.  Jobs already on a
  worker always run to completion — SAT processes are not preemptible
  mid-descent.

The service is transport-agnostic: :mod:`repro.service.server` puts the
JSON-over-HTTP face on it, and tests drive this class directly.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.core.config import METHOD_FULL_SAT, FermihedralConfig
from repro.core.pipeline import FermihedralCompiler
from repro.hardware import resolve_device
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, JobRecord
from repro.store.batch import (
    CompileJob,
    JobOutcome,
    compile_job_key,
    job_from_spec,
    run_compile_job,
)
from repro.store.cache import CompilationCache

#: Default bound on active (queued + running) jobs.
DEFAULT_QUEUE_LIMIT = 64

#: Default bound on finished records kept in memory (the cache holds the
#: results themselves; evicted ids just stop answering ``GET /jobs/<id>``).
DEFAULT_MAX_RECORDS = 4096

#: Default total attempts per job (1 initial + 2 supervised retries).
DEFAULT_MAX_ATTEMPTS = 3

#: Exponential retry backoff saturates here.
_RETRY_BACKOFF_CAP_S = 30.0

#: ``Retry-After`` hints never exceed this (seconds).
_RETRY_AFTER_CAP_S = 300

#: Fraction of ``queue_limit`` above which ``healthz`` reports
#: ``status: degraded`` (still HTTP 200 — a saturation warning, not an
#: outage).
_HEALTH_HIGH_WATER = 0.8

#: Signature of an injectable batch runner (tests use this to count or
#: sabotage compilations deterministically).
BatchRunner = Callable[[list[tuple[str, CompileJob]]], "dict[str, JobOutcome]"]


class ServiceRejection(Exception):
    """A submission the service refused; ``http_status`` picks the code."""

    http_status = 400


class QueueFullError(ServiceRejection):
    """Backpressure: the active-job bound is reached (HTTP 429).

    ``retry_after_s`` is the service's drain-rate estimate of when a slot
    should free up; the HTTP layer forwards it as a ``Retry-After``
    header and the client honors it between retries.
    """

    http_status = 429

    def __init__(self, message: str, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceUnavailableError(ServiceRejection):
    """The service is draining or stopped and takes no new work (HTTP 503)."""

    http_status = 503


class AmbiguousJobIdError(ServiceRejection):
    """A job-id prefix matched more than one record (HTTP 409)."""

    http_status = 409


@dataclass
class ServiceStats:
    """Monotonic counters over one service lifetime (``GET /stats``)."""

    submitted: int = 0
    accepted: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    evicted: int = 0
    retried: int = 0
    degraded: int = 0


class CompilationService:
    """The queue, registry, and dispatcher behind ``repro serve``.

    Args:
        cache: persistent result store; enables the synchronous cache-hit
            path and worker-side memoization.  ``None`` still
            deduplicates in memory but persists nothing.
        default_config: config for jobs that do not override one.
        jobs: worker-process count of the drain pool (= concurrent jobs).
        queue_limit: bound on active (queued + running) jobs.
        max_records: bound on finished records kept in the registry.
        max_attempts: total attempts per job — 1 means retryable
            failures are final like any other; N > 1 allows N - 1
            supervised retries of infrastructure failures.
        retry_backoff_s: base of the exponential retry backoff (the
            k-th retry waits ``min(30, base * 2**(k-1))`` seconds plus
            a deterministic sub-``base`` jitter derived from the job
            key, so a crashed batch does not thunder back in lockstep).
        default_method / default_device: applied to specs without those
            fields, mirroring ``repro batch``'s CLI defaults.
        use_processes: force the drain engine — ``True`` = the persistent
            process pool, ``False`` = in-thread compiles (no isolation,
            but works where ``fork`` does not).  ``None`` picks processes
            exactly when ``fork`` is available.
        runner: test seam — replaces the drain engine with a callable
            mapping a batch to outcomes.
        telemetry: a :class:`repro.telemetry.Telemetry` handle.  ``None``
            (the default) creates one — the service is always observable:
            ``GET /metrics`` renders its registry, worker spans relay
            into its tracer, and each finished job's span tree is kept
            (bounded by ``max_records``) for ``GET /debug/trace/<id>``.
    """

    def __init__(
        self,
        cache: CompilationCache | None = None,
        default_config: FermihedralConfig | None = None,
        jobs: int = 1,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_records: int = DEFAULT_MAX_RECORDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_backoff_s: float = 0.5,
        default_method: str = METHOD_FULL_SAT,
        default_device=None,
        use_processes: bool | None = None,
        runner: BatchRunner | None = None,
        telemetry=None,
    ):
        if jobs < 1:
            raise ValueError("service needs at least one worker")
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if max_records < 1:
            raise ValueError("max_records must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        self.cache = cache
        self.default_config = default_config or FermihedralConfig()
        self.jobs = jobs
        self.queue_limit = queue_limit
        self.max_records = max_records
        self.max_attempts = max_attempts
        self.retry_backoff_s = retry_backoff_s
        self.default_method = default_method
        self.default_device = default_device
        self._runner = runner
        if use_processes is None:
            import multiprocessing

            use_processes = "fork" in multiprocessing.get_all_start_methods()
        self._use_processes = use_processes and runner is None
        self.stats = ServiceStats()
        self.started_at = time.time()

        self._records: dict[str, JobRecord] = {}
        self._order: deque[str] = deque()
        #: ``(key, attempt)`` in completion order — the eviction queue.
        self._finished_order: deque[tuple[str, int]] = deque()
        self._queue: deque[str] = deque()
        #: key -> attempt currently on a worker; guards against a stale
        #: outcome finishing a record that was requeued in the meantime.
        self._inflight: dict[str, int] = {}
        #: key -> monotonic instant its scheduled retry becomes dispatchable.
        self._retry_ready: dict[str, float] = {}
        #: Solver-side durations of recent finishes — the drain-rate
        #: sample behind the 429 ``Retry-After`` hint.
        self._recent_finished: deque[float] = deque(maxlen=32)
        #: Jobs in queued/running state (kept exact so submit() never
        #: scans the whole registry).
        self._active_count = 0
        #: Worker slots currently occupied by a dispatched job.
        self._active_runs = 0
        self._wake = threading.Condition()
        self._state = "serving"  # serving | draining | stopped
        self._thread: threading.Thread | None = None
        self._executor = None

        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        self.telemetry = telemetry
        if cache is not None:
            cache.set_telemetry(telemetry)
        #: job id -> relayed span events of its last finished attempt
        #: (evicted in lockstep with the record registry).
        self._traces: dict[str, list[dict]] = {}
        #: job id -> flight-recorder dump of its last *failed* attempt
        #: (evicted in lockstep with the record registry).
        self._forensics: dict[str, dict] = {}
        #: Scratch directory for worker-side live progress snapshot
        #: files; created in :meth:`start` on the process engine.
        self._progress_dir: str | None = None
        self._submit_latency = telemetry.histogram(
            "repro_service_submit_seconds", "submit() latency"
        )
        self._poll_latency = telemetry.histogram(
            "repro_service_poll_seconds", "job lookup latency"
        )
        telemetry.metrics.add_collect_hook(self._collect_gauges)

    def _emit_job_event(self, key: str, state: str, **fields) -> None:
        """One lifecycle event into the progress feed — consumers of
        ``GET /events`` see the full queued → running → done/failed story
        interleaved with the workers' heartbeats on one cursor."""
        self.telemetry.progress.emit("job", job=key, state=state, **fields)

    def _collect_gauges(self) -> None:
        """Scrape-time gauges: queue/slot occupancy and per-state jobs.

        Runs inside ``MetricsRegistry.render()`` so ``GET /metrics``
        always reports the current queue shape, not the shape at the last
        state transition.
        """
        with self._wake:
            depth = len(self._queue)
            active = self._active_runs
            tally: dict[str, int] = {}
            for record in self._records.values():
                tally[record.status] = tally.get(record.status, 0) + 1
        self.telemetry.gauge(
            "repro_service_queue_depth", "jobs waiting for a worker slot"
        ).set(depth)
        self.telemetry.gauge(
            "repro_service_active_slots", "worker slots running a job"
        ).set(active)
        jobs_gauge = self.telemetry.gauge(
            "repro_service_jobs", "registry records per state"
        )
        for state in (QUEUED, RUNNING, DONE, FAILED):
            jobs_gauge.labels(state=state).set(tally.get(state, 0))

    # -- lifecycle ------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    def start(self) -> "CompilationService":
        """Spin up the dispatcher (idempotent); returns ``self``."""
        if self._thread is not None:
            return self
        if self._use_processes:
            from repro.parallel.executor import ProcessBatchExecutor

            self._progress_dir = tempfile.mkdtemp(prefix="repro-progress-")
            self._executor = ProcessBatchExecutor(
                jobs=self.jobs,
                cache=self.cache,
                default_config=self.default_config,
                on_outcome=self._handle_outcome,
                telemetry=self.telemetry,
                progress_dir=self._progress_dir,
            ).__enter__()
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-service-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self, drain: bool = True, wait: bool = False,
                 timeout: float | None = None) -> None:
        """Stop intake; optionally cancel the queue; optionally block.

        ``drain=True`` lets every queued job run before the dispatcher
        exits; ``drain=False`` cancels queued jobs (their records turn
        ``failed`` with a ``cancelled`` message) but still waits out jobs
        already on a worker.  ``wait=True`` joins the dispatcher.
        """
        with self._wake:
            if self._state == "serving":
                self._state = "draining"
            if not drain:
                # Queued jobs and backoff-pending retries alike: anything
                # not yet on a worker is cancelled.
                pending = list(self._queue) + list(self._retry_ready)
                self._queue.clear()
                self._retry_ready.clear()
                for key in pending:
                    record = self._records[key]
                    self._finish_record(record, JobOutcome(
                        job=record.job, key=key, status="error",
                        error="cancelled: service shut down before the "
                              "job was dispatched",
                    ))
                    self.stats.cancelled += 1
            self._wake.notify_all()
        if wait:
            self.join(timeout)

    def join(self, timeout: float | None = None) -> None:
        """Wait for the dispatcher to finish (after :meth:`shutdown`)."""
        if self._thread is not None:
            self._thread.join(timeout)

    # -- submission -----------------------------------------------------------

    def submit(self, spec: dict) -> tuple[JobRecord, bool]:
        """Accept one job spec; returns ``(record, deduplicated)``.

        Raises:
            ValueError: malformed spec (HTTP 400).
            ServiceUnavailableError: service draining/stopped (HTTP 503).
            QueueFullError: active-job bound reached (HTTP 429).
        """
        started = time.monotonic()
        try:
            return self._submit(spec)
        finally:
            self._submit_latency.observe(time.monotonic() - started)

    def _submit(self, spec: dict) -> tuple[JobRecord, bool]:
        job = job_from_spec(
            spec,
            default_method=self.default_method,
            default_device=self.default_device,
            base_config=self.default_config,
            strict=True,
        )
        key = compile_job_key(job, self.default_config)
        with self._wake:
            existing = self._existing_or_reject(key)
            if existing is not None:
                return existing, True
        # The cache read is real disk I/O — do it without the lock, then
        # re-check the registry: a racing twin may have submitted the
        # same key, or the service may have started draining.
        cached = self._final_cached(job, key)
        with self._wake:
            existing = self._existing_or_reject(key)
            if existing is not None:
                return existing, True
            previous = self._records.get(key)  # a failed attempt, if any
            self.stats.submitted += 1
            if cached is not None:
                record = self._install(key, job, previous)
                self._finish_record(record, JobOutcome(
                    job=job, key=key, status="cache-hit", result=cached,
                ))
                self.stats.cache_hits += 1
                return record, False
            if self._active_count >= self.queue_limit:
                self.stats.rejected += 1
                raise QueueFullError(
                    f"queue full: {self._active_count} active jobs (limit "
                    f"{self.queue_limit}); retry later",
                    retry_after_s=self._retry_after_hint(),
                )
            record = self._install(key, job, previous)
            self._queue.append(key)
            self.stats.accepted += 1
            self._emit_job_event(key, QUEUED, label=job.display)
            self._wake.notify_all()
            return record, False

    def _existing_or_reject(self, key: str) -> JobRecord | None:
        """Under the lock: enforce the intake state, and return the
        record a duplicate submission collapses onto (``None`` when the
        key is new or only failed)."""
        if self._state != "serving":
            self.stats.rejected += 1
            raise ServiceUnavailableError(
                f"service is {self._state}; not accepting jobs"
            )
        record = self._records.get(key)
        if record is not None and record.status != FAILED:
            # Queued, running, or done: the same work, already owned.
            record.submissions += 1
            self.stats.submitted += 1
            self.stats.deduplicated += 1
            return record
        return None

    def _install(self, key: str, job: CompileJob,
                 previous: JobRecord | None) -> JobRecord:
        """Fresh active record for ``key`` (resubmitted failures keep
        their submission tally and bump the attempt generation)."""
        record = JobRecord(
            id=key, job=job, status=QUEUED, submitted_at=time.time()
        )
        if previous is not None:
            record.submissions = previous.submissions + 1
            record.attempt = previous.attempt + 1
        else:
            self._order.append(key)
        self._records[key] = record
        self._active_count += 1
        return record

    def _retry_after_hint(self) -> float:
        """Seconds until a slot plausibly frees up (lock held): the mean
        recent job duration times how many queue "waves" stand between a
        new submission and a free worker.  Deliberately coarse — it is a
        politeness hint for 429 clients, not a promise."""
        recent = [s for s in self._recent_finished if s > 0]
        avg = (sum(recent) / len(recent)) if recent else 10.0
        waves = (self._active_count + self.jobs) // max(self.jobs, 1)
        return float(min(_RETRY_AFTER_CAP_S, max(1, int(round(avg * waves)))))

    def _final_cached(self, job: CompileJob, key: str):
        """A cached result that can answer the submission outright."""
        if self.cache is None:
            return None
        cached = self.cache.get(key)
        if cached is None:
            return None
        topology = resolve_device(job.device)
        if not FermihedralCompiler._is_final(cached, job.method, topology):
            return None  # unproved: let a worker warm-start from it
        return cached

    # -- dispatch -------------------------------------------------------------

    def _can_dispatch(self) -> bool:
        return bool(self._queue) and self._active_runs < self.jobs

    def _drained(self) -> bool:
        return (self._state != "serving" and not self._queue
                and not self._retry_ready and self._active_runs == 0)

    def _promote_due_retries(self) -> None:
        """Move retry-scheduled jobs whose backoff has elapsed back onto
        the dispatch queue (lock held)."""
        now = time.monotonic()
        for key in [k for k, ready in self._retry_ready.items()
                    if ready <= now]:
            del self._retry_ready[key]
            record = self._records.get(key)
            if record is None or record.status != QUEUED:
                continue  # cancelled or superseded while waiting
            self._queue.append(key)
            self._emit_job_event(
                key, QUEUED, label=record.job.display, retry=record.retries
            )

    def _next_retry_wait(self) -> float | None:
        """Seconds until the earliest scheduled retry is due (lock held);
        ``None`` when nothing is waiting on backoff."""
        if not self._retry_ready:
            return None
        return max(0.0, min(self._retry_ready.values()) - time.monotonic())

    def _drain_loop(self) -> None:
        """Hand one queued job to each free worker slot as both appear.

        Dispatch is per job, not per batch: a slow descent occupies one
        slot while later submissions flow past it into the others.
        """
        while True:
            with self._wake:
                while True:
                    self._promote_due_retries()
                    if self._can_dispatch() or self._drained():
                        break
                    self._wake.wait(self._next_retry_wait())
                if self._drained():
                    self._state = "stopped"
                    self._wake.notify_all()
                    break
                key = self._queue.popleft()
                record = self._records[key]
                record.status = RUNNING
                record.started_at = time.time()
                self._inflight[key] = record.attempt
                self._active_runs += 1
                job = record.job
                self._emit_job_event(key, RUNNING, label=job.display)
            threading.Thread(
                target=self._run_one, args=(key, job),
                name="repro-service-run", daemon=True,
            ).start()
        if self._executor is not None:
            self._executor.close()
        if self._progress_dir is not None:
            shutil.rmtree(self._progress_dir, ignore_errors=True)

    def _run_one(self, key: str, job: CompileJob) -> None:
        """One dispatched job, on its own slot thread (the process pool
        underneath bounds actual CPU parallelism to ``jobs``)."""
        try:
            outcomes = self._run_batch([(key, job)])
            outcome = outcomes.get(key)
            if outcome is None:
                outcome = JobOutcome(
                    job=job, key=key, status="error",
                    error="worker returned no outcome for this job",
                )
        except Exception as error:
            outcome = JobOutcome(
                job=job, key=key, status="error",
                error=f"worker pool failure: {type(error).__name__}: {error}",
            )
        self._handle_outcome(outcome)
        with self._wake:
            self._active_runs -= 1
            self._wake.notify_all()

    def _run_batch(self, batch: list[tuple[str, CompileJob]]):
        if self._runner is not None:
            return self._runner(batch)
        if self._executor is not None:
            return self._executor.run(batch)
        # In-thread fallback (no fork): same body the thread batch uses.
        # Each job still records into its own throwaway Telemetry and
        # relays, so per-job traces exist on every execution engine.
        from repro.telemetry import Telemetry

        outcomes = {}
        for key, job in batch:
            job_telemetry = Telemetry()

            def forward(event, _bus=self.telemetry.progress):
                _bus.ingest([event])

            # Same-process jobs can stream progress live instead of
            # waiting for the end-of-job relay.
            job_telemetry.progress.add_sink(forward)
            outcome = run_compile_job(
                job, job.config or self.default_config, self.cache, key,
                telemetry=job_telemetry,
            )
            payload = job_telemetry.drain_relay()
            # Progress already went through the live sink above —
            # absorbing it again would double every event.
            payload.pop("progress", None)
            outcome.telemetry = payload
            self.telemetry.absorb_relay(
                payload, extra={"job": job.display}
            )
            outcomes[key] = outcome
        return outcomes

    def _handle_outcome(self, outcome: JobOutcome) -> None:
        """Terminal bookkeeping for one job (idempotent; called from the
        executor's ``on_outcome`` hook as each job resolves, and again
        defensively from the slot thread)."""
        with self._wake:
            record = self._records.get(outcome.key)
            if record is None or record.finished:
                return
            if self._inflight.get(outcome.key) != record.attempt:
                return  # stale outcome from a superseded attempt
            del self._inflight[outcome.key]
            if outcome.telemetry and outcome.telemetry.get("events"):
                self._traces[outcome.key] = outcome.telemetry["events"]
            if self._should_retry(record, outcome):
                self._schedule_retry(record, outcome)
                return
            if outcome.forensics:
                self._forensics[outcome.key] = outcome.forensics
            elif outcome.status == "error":
                # A hard crash (broken pool, killed worker) brings no
                # recorder dump home — synthesize a minimal one so
                # ``GET /jobs/<id>/forensics`` still answers.
                self._forensics[outcome.key] = {
                    "captured_at": time.time(),
                    "error": outcome.error,
                    "events": [],
                    "open_spans": [],
                    "metrics": None,
                    "synthesized": True,
                }
            self._finish_record(record, outcome)

    def _should_retry(self, record: JobRecord, outcome: JobOutcome) -> bool:
        """Retry exactly the failures that blame infrastructure (lock
        held): the outcome opted in via ``retryable``, the service is
        still accepting work, and the attempt budget is not spent."""
        return (
            outcome.status == "error"
            and outcome.retryable
            and self._state == "serving"
            and record.retries + 1 < self.max_attempts
        )

    def _schedule_retry(self, record: JobRecord, outcome: JobOutcome) -> None:
        """Requeue a retryably-failed record with backoff (lock held).
        The record stays active (it still occupies queue capacity) and
        its attempt generation is bumped, so any stale outcome from the
        dead attempt is ignored."""
        record.retries += 1
        record.attempt += 1
        record.status = QUEUED
        record.started_at = None
        delay = self._retry_delay(record.id, record.retries)
        self._retry_ready[record.id] = time.monotonic() + delay
        self.stats.retried += 1
        self.telemetry.counter(
            "repro_service_retries_total",
            "supervised retries of retryably-failed jobs",
        ).inc()
        self._emit_job_event(
            record.id, "retrying", label=record.job.display,
            attempt=record.retries + 1, delay_s=round(delay, 3),
            error=outcome.error,
        )
        self._wake.notify_all()

    def _retry_delay(self, key: str, retries: int) -> float:
        """Exponential backoff plus deterministic per-(key, attempt)
        jitter — reproducible in tests, desynchronized in production."""
        base = min(_RETRY_BACKOFF_CAP_S,
                   self.retry_backoff_s * (2 ** (retries - 1)))
        digest = hashlib.sha256(f"{key}:{retries}".encode()).hexdigest()
        jitter = (int(digest[:8], 16) / 0xFFFFFFFF) * self.retry_backoff_s
        return base + jitter

    def _finish_record(self, record: JobRecord, outcome: JobOutcome) -> None:
        """Terminal transition + counters + eviction (lock held)."""
        record.apply_outcome(outcome, finished_at=time.time())
        self._active_count -= 1
        self._retry_ready.pop(record.id, None)
        if outcome.elapsed_s > 0:
            self._recent_finished.append(outcome.elapsed_s)
        if record.status == FAILED:
            self.stats.failed += 1
        else:
            self.stats.completed += 1
            if outcome.status == "degraded":
                self.stats.degraded += 1
                self.telemetry.counter(
                    "repro_service_degraded_total",
                    "jobs that finished degraded (deadline expired "
                    "mid-descent, best-so-far result returned)",
                ).inc()
        self._finished_order.append((record.id, record.attempt))
        self._emit_job_event(
            record.id, record.status, label=record.job.display,
            outcome=outcome.status, error=outcome.error,
            elapsed_s=round(outcome.elapsed_s, 3),
        )
        self._evict_finished()
        self._wake.notify_all()

    def _evict_finished(self) -> None:
        """Drop the *earliest-finished* records beyond ``max_records``
        (lock held).  Completion order, not submission order: the record
        that just finished is always the last eviction candidate, so a
        submitter's next poll can never find its fresh result already
        gone.  Evicted results live on in the cache; their ids simply
        stop resolving, and a resubmission becomes a cache hit."""
        excess = (len(self._records) - self._active_count) - self.max_records
        while excess > 0 and self._finished_order:
            key, attempt = self._finished_order.popleft()
            record = self._records.get(key)
            if record is None or not record.finished \
                    or record.attempt != attempt:
                continue  # stale entry: already evicted or requeued since
            del self._records[key]
            self._traces.pop(key, None)
            self._forensics.pop(key, None)
            self.telemetry.progress.forget(key)
            self.stats.evicted += 1
            excess -= 1
        # _order keeps evicted keys as tombstones (readers skip them);
        # compact once they dominate.
        if len(self._order) > 2 * (len(self._records) + 1):
            self._order = deque(
                key for key in self._order if key in self._records
            )

    # -- introspection --------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._wake:
            return self._records.get(job_id)

    def find(self, prefix: str) -> list[JobRecord]:
        """Records whose id starts with ``prefix`` (CLI convenience)."""
        with self._wake:
            return [
                self._records[key] for key in self._order
                if key in self._records and key.startswith(prefix)
            ]

    def records(self) -> list[JobRecord]:
        """All records, in first-submission order."""
        with self._wake:
            return [
                self._records[key] for key in self._order
                if key in self._records
            ]

    def jobs_wire(self) -> list[dict]:
        """Summaries of every record, in first-submission order."""
        with self._wake:
            return [
                self._records[key].to_wire(include_result=False)
                for key in self._order if key in self._records
            ]

    def record_wire(self, record: JobRecord, include_result: bool = True) -> dict:
        """A record's wire form, serialized under the service lock so a
        concurrent terminal transition can never produce a half-updated
        view (``status: done`` with no result)."""
        with self._wake:
            return record.to_wire(include_result)

    def job_wire(self, job_id: str, include_result: bool = True) -> dict | None:
        with self._wake:
            record = self._records.get(job_id)
            return None if record is None else record.to_wire(include_result)

    def lookup_wire(self, job_id: str,
                    include_result: bool = True) -> dict | None:
        """Wire form by exact id or unique prefix (``None`` when absent).

        Records evicted from the in-memory registry still answer: job ids
        are cache keys, so an id that no longer resolves in the registry
        is re-answered from the persistent cache (``"source": "cache"``
        marks such synthesized records).  Raises
        :class:`AmbiguousJobIdError` when a prefix matches more than one
        record or cache entry.
        """
        started = time.monotonic()
        try:
            with self._wake:
                record = self._records.get(job_id)
                if record is None and job_id:
                    matches = [
                        self._records[key] for key in self._order
                        if key in self._records and key.startswith(job_id)
                    ]
                    if len(matches) > 1:
                        raise AmbiguousJobIdError(
                            f"job id prefix {job_id!r} is ambiguous "
                            f"({len(matches)} matches)"
                        )
                    record = matches[0] if matches else None
                if record is not None:
                    return record.to_wire(include_result)
            return self._cache_wire(job_id, include_result)
        finally:
            self._poll_latency.observe(time.monotonic() - started)

    def _cache_wire(self, job_id: str, include_result: bool) -> dict | None:
        """Synthesize a ``done`` record for an evicted-but-cached job id.

        The registry bounds its memory by evicting finished records, but
        their results (and the ids themselves — fingerprint keys) live on
        in the cache; a poll for such an id deserves the result, not a
        404.  Runs outside the service lock: this is disk I/O.
        """
        if self.cache is None or not job_id:
            return None
        infos = [
            info for info in self.cache.find(job_id) if not info.corrupted
        ]
        if len(infos) > 1:
            raise AmbiguousJobIdError(
                f"job id prefix {job_id!r} is ambiguous "
                f"({len(infos)} cache entries)"
            )
        if not infos:
            return None
        info = infos[0]
        wire = {
            "id": info.key,
            "status": DONE,
            "label": None,
            "method": info.method,
            "modes": info.num_modes,
            "device": None,
            "seed": None,
            "outcome": "cache-hit",
            "error": None,
            "cache_error": None,
            "submissions": 0,
            "submitted_at": None,
            "started_at": None,
            "finished_at": info.created_at,
            "elapsed_s": 0.0,
            "weight": info.weight,
            "proved_optimal": info.proved_optimal,
            "retries": 0,
            "degraded": False,
            "source": "cache",
        }
        if include_result:
            result = self.cache.get(info.key)
            if result is None:
                return None  # corrupted or vanished between find and get
            from repro.encodings.serialization import result_to_dict

            wire["result"] = result_to_dict(result)
            wire["device"] = result.device
        return wire

    def metrics_text(self) -> str:
        """The registry in Prometheus text form (``GET /metrics``)."""
        return self.telemetry.render_metrics()

    def trace_wire(self, job_id: str) -> dict | None:
        """A finished job's relayed span events, by exact id or prefix."""
        with self._wake:
            key, events = job_id, self._traces.get(job_id)
            if events is None and job_id:
                matches = [k for k in self._traces if k.startswith(job_id)]
                if len(matches) > 1:
                    raise AmbiguousJobIdError(
                        f"job id prefix {job_id!r} is ambiguous "
                        f"({len(matches)} traces)"
                    )
                if matches:
                    key = matches[0]
                    events = self._traces[key]
            if events is None:
                return None
            return {"id": key, "events": list(events)}

    def progress_wire(self, job_id: str) -> dict | None:
        """A job's live progress snapshot, by exact id or unique prefix.

        For a *running* process-engine job, the bus snapshot (lifecycle
        events plus whatever the end-of-job relay has already brought
        home) is overlaid with the worker's live snapshot file, so the
        answer carries the current bound, conflict count, and conflict
        rate mid-descent.  ``None`` when the id resolves to no record.
        """
        with self._wake:
            record = self._records.get(job_id)
            if record is None and job_id:
                matches = [
                    self._records[key] for key in self._order
                    if key in self._records and key.startswith(job_id)
                ]
                if len(matches) > 1:
                    raise AmbiguousJobIdError(
                        f"job id prefix {job_id!r} is ambiguous "
                        f"({len(matches)} matches)"
                    )
                record = matches[0] if matches else None
            if record is None:
                return None
            key, status = record.id, record.status
        snapshot = self.telemetry.progress.snapshot(key) or {}
        if status == RUNNING and self._executor is not None:
            path = self._executor.progress_path(key)
            if path is not None:
                from repro.telemetry.progress import read_snapshot

                live = read_snapshot(path)
                if live:
                    snapshot = {**snapshot, **live}
        return {"id": key, "status": status, "progress": snapshot or None}

    def events_wire(self, since: int = 0, timeout: float = 0.0,
                    limit: int = 500) -> dict:
        """The progress feed after cursor ``since`` (``GET /events``);
        with ``timeout`` > 0, long-polls for the first new event."""
        bus = self.telemetry.progress
        if timeout > 0:
            return bus.wait_since(since, timeout=timeout, limit=limit)
        return bus.since(since, limit=limit)

    def forensics_wire(self, job_id: str) -> dict | None:
        """A failed job's flight-recorder dump, by exact id or prefix."""
        with self._wake:
            key, dump = job_id, self._forensics.get(job_id)
            if dump is None and job_id:
                matches = [k for k in self._forensics if k.startswith(job_id)]
                if len(matches) > 1:
                    raise AmbiguousJobIdError(
                        f"job id prefix {job_id!r} is ambiguous "
                        f"({len(matches)} forensics dumps)"
                    )
                if matches:
                    key = matches[0]
                    dump = self._forensics[key]
            if dump is None:
                return None
            return {"id": key, "forensics": dump}

    def proof_wire(self, job_id: str) -> dict | None:
        """A finished job's proof metadata plus its stored DRAT trace.

        ``None`` when the id resolves to nothing at all; a resolved job
        without a proof answers with ``"proof": None`` so the HTTP layer
        can distinguish *no such job* (404) from *no proof* (404 with a
        pointed message).  The full trace document is loaded from the
        cache's content-addressed proof store when present.
        """
        wire = self.lookup_wire(job_id, include_result=True)
        if wire is None:
            return None
        result = wire.get("result") or {}
        proof = result.get("proof")
        payload = {"id": wire["id"], "proof": proof, "trace": None}
        if proof and self.cache is not None and proof.get("sha256"):
            trace = self.cache.get_proof(proof["sha256"])
            if trace is not None:
                payload["trace"] = trace.to_dict()
        return payload

    def counts(self) -> dict[str, int]:
        """Jobs per state (zero states omitted)."""
        with self._wake:
            tally: dict[str, int] = {}
            for record in self._records.values():
                tally[record.status] = tally.get(record.status, 0) + 1
            return tally

    def healthz(self) -> dict:
        counts = self.counts()
        active = counts.get(QUEUED, 0) + counts.get(RUNNING, 0)
        high_water = max(1, int(_HEALTH_HIGH_WATER * self.queue_limit))
        return {
            "ok": self._state != "stopped",
            # "degraded" above the high-water mark is a saturation
            # warning for load balancers — still HTTP 200, still serving.
            "status": ("stopped" if self._state == "stopped"
                       else "degraded" if active >= high_water else "ok"),
            "state": self._state,
            "uptime_s": time.time() - self.started_at,
            "queued": counts.get(QUEUED, 0),
            "running": counts.get(RUNNING, 0),
            "done": counts.get(DONE, 0),
            "failed": counts.get(FAILED, 0),
            "workers": self.jobs,
            "execution": "processes" if self._use_processes else "in-process",
        }

    def stats_wire(self) -> dict:
        stats = self.stats
        cache: dict = {"enabled": self.cache is not None}
        if self.cache is not None:
            cache.update(
                root=str(self.cache.root),
                hits=self.cache.stats.hits,
                misses=self.cache.stats.misses,
                stores=self.cache.stats.stores,
                warm_starts=self.cache.stats.warm_starts,
                corrupted=self.cache.stats.corrupted,
            )
        return {
            "state": self._state,
            "uptime_s": time.time() - self.started_at,
            "queue_limit": self.queue_limit,
            "max_records": self.max_records,
            "workers": self.jobs,
            "execution": "processes" if self._use_processes else "in-process",
            "jobs": self.counts(),
            "counters": {
                "submitted": stats.submitted,
                "accepted": stats.accepted,
                "deduplicated": stats.deduplicated,
                "cache_hits": stats.cache_hits,
                "completed": stats.completed,
                "failed": stats.failed,
                "cancelled": stats.cancelled,
                "rejected": stats.rejected,
                "evicted": stats.evicted,
                "retried": stats.retried,
                "degraded": stats.degraded,
            },
            "cache": cache,
        }

    def wait_for(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until ``job_id`` finishes (in-process convenience; the
        HTTP client polls instead).  Raises ``KeyError`` for unknown ids
        and ``TimeoutError`` on expiry."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wake:
            while True:
                record = self._records.get(job_id)
                if record is None:
                    raise KeyError(job_id)
                if record.finished:
                    return record
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"job {job_id[:12]} still {record.status} after "
                            f"{timeout}s"
                        )
                self._wake.wait(remaining)
