"""Thin typed client for the compilation service (stdlib ``urllib``).

:class:`ServiceClient` speaks the wire format of
:mod:`repro.service.server` and decodes finished jobs back into
first-class :class:`~repro.core.pipeline.CompilationResult` objects via
the versioned result schema — so a batch script can swap a local
``FermihedralCompiler`` for a remote service by changing one line.

Example::

    client = ServiceClient("http://127.0.0.1:8765")
    record = client.submit({"model": "h2"})
    record = client.wait(record["id"], timeout=600)
    result = client.result(record)          # a CompilationResult
    print(result.weight, result.proved_optimal)

Every CLI verb (``repro submit``, ``repro jobs``, ``repro shutdown``)
drives this class, so scripts and the command line can never disagree
about the protocol.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import TYPE_CHECKING

from repro.service.server import DEFAULT_PORT

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.pipeline import CompilationResult

#: Environment override consulted when no URL is given explicitly.
SERVICE_URL_ENV = "REPRO_SERVICE_URL"


def service_url(explicit: str | None = None) -> str:
    """Resolve the service base URL: argument > $REPRO_SERVICE_URL > default."""
    url = explicit or os.environ.get(SERVICE_URL_ENV) \
        or f"http://127.0.0.1:{DEFAULT_PORT}"
    return url.rstrip("/")


class ServiceError(RuntimeError):
    """An HTTP-level or protocol-level failure talking to the service.

    ``status`` carries the HTTP code when one was received (``None`` for
    transport failures such as a connection refusal).
    """

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class JobFailedError(ServiceError):
    """A polled job finished ``failed``; ``record`` is its wire form.

    ``forensics_path`` points at the failed attempt's flight-recorder
    dump (:meth:`ServiceClient.forensics` fetches it), so the exception
    message alone tells an operator where the breadcrumbs are.
    """

    def __init__(self, record: dict):
        job_id = record.get("id", "?")
        super().__init__(
            f"job {job_id[:12]} failed: "
            f"{record.get('error') or 'unknown error'} "
            f"(forensics: GET /jobs/{job_id[:12]}/forensics)"
        )
        self.record = record
        self.job_id = job_id
        self.forensics_path = f"/jobs/{job_id}/forensics"


class WaitTimeout(ServiceError):
    """:meth:`ServiceClient.wait` expired before the job finished.

    Distinct from :class:`JobFailedError`: the job is still queued or
    running server-side — only the client stopped waiting.  ``record``
    is the last polled wire form.
    """

    def __init__(self, record: dict, timeout: float):
        super().__init__(
            f"timed out after {timeout}s waiting for job "
            f"{record.get('id', '?')[:12]} (status {record.get('status')})"
        )
        self.record = record


#: HTTP codes the client treats as transient (retry with backoff).
_RETRYABLE_HTTP = (429, 503)

#: Never sleep longer than this between request retries, whatever the
#: server's ``Retry-After`` says.
_MAX_RETRY_SLEEP_S = 30.0


class ServiceClient:
    """Synchronous client for one service endpoint.

    Args:
        base_url: service root (default: ``$REPRO_SERVICE_URL`` or
            ``http://127.0.0.1:8765``).
        timeout: per-request socket timeout in seconds.
        retries: transparent per-request retries of *transient* failures
            — connection errors, 429 (queue full) and 503 (draining or a
            flaky front-end).  ``0`` disables retrying (tests asserting
            raw backpressure behavior use that).  Submits are safe to
            retry: job specs are fingerprint-deduplicated server-side,
            so a retried POST collapses onto the first accepted record.
        retry_backoff_s: base of the exponential sleep between retries;
            a server-sent ``Retry-After`` header overrides it (capped).
    """

    def __init__(self, base_url: str | None = None, timeout: float = 10.0,
                 retries: int = 2, retry_backoff_s: float = 0.25):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.base_url = service_url(base_url)
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s

    # -- transport ------------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None,
                 timeout: float | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if timeout is None:
            timeout = self.timeout
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(request,
                                            timeout=timeout) as response:
                    body = response.read()
            except urllib.error.HTTPError as error:
                if error.code in _RETRYABLE_HTTP and attempt < self.retries:
                    self._sleep_before_retry(attempt, error)
                    continue
                raise ServiceError(
                    self._error_message(error), status=error.code
                ) from None
            except urllib.error.URLError as error:
                if attempt < self.retries:
                    self._sleep_before_retry(attempt)
                    continue
                raise ServiceError(
                    f"service unreachable at {self.base_url}: {error.reason}"
                ) from None
            try:
                return json.loads(body)
            except json.JSONDecodeError as error:
                raise ServiceError(
                    f"invalid JSON from {url}: {error}"
                ) from None
        raise AssertionError("unreachable: retry loop always returns/raises")

    def _sleep_before_retry(
        self, attempt: int, error: "urllib.error.HTTPError | None" = None
    ) -> None:
        """Honor the server's ``Retry-After`` when present, otherwise
        back off exponentially from ``retry_backoff_s``."""
        delay = self.retry_backoff_s * (2 ** attempt)
        if error is not None:
            retry_after = error.headers.get("Retry-After")
            try:
                if retry_after is not None:
                    delay = float(retry_after)
            except (TypeError, ValueError):
                pass
        time.sleep(max(0.0, min(delay, _MAX_RETRY_SLEEP_S)))

    @staticmethod
    def _error_message(error: urllib.error.HTTPError) -> str:
        try:
            payload = json.loads(error.read())
            message = payload.get("error")
        except (json.JSONDecodeError, OSError, AttributeError):
            message = None
        return message or f"HTTP {error.code}: {error.reason}"

    # -- API ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit(self, spec: dict) -> dict:
        """Submit one job spec; returns its record summary (no result)."""
        return self._request("POST", "/jobs", payload=spec)

    def job(self, job_id: str, include_result: bool = True) -> dict:
        suffix = "" if include_result else "?result=0"
        return self._request("GET", f"/jobs/{job_id}{suffix}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def shutdown(self, drain: bool = True) -> dict:
        return self._request("POST", "/shutdown", payload={"drain": drain})

    def metrics(self) -> str:
        """The service's ``/metrics`` page, raw Prometheus text."""
        url = f"{self.base_url}/metrics"
        request = urllib.request.Request(
            url, headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(
                self._error_message(error), status=error.code
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"service unreachable at {self.base_url}: {error.reason}"
            ) from None

    def proof(self, job_id: str) -> dict:
        """A job's proof metadata and stored DRAT trace document.

        404s (no such job / job captured no proof) surface as
        :class:`ServiceError` with ``status == 404``.
        """
        return self._request("GET", f"/jobs/{job_id}/proof")

    def trace(self, job_id: str) -> dict:
        """A finished job's span events (``GET /debug/trace/<id>``)."""
        return self._request("GET", f"/debug/trace/{job_id}")

    def progress(self, job_id: str) -> dict:
        """A job's live progress snapshot (``GET /jobs/<id>/progress``)."""
        return self._request("GET", f"/jobs/{job_id}/progress")

    def forensics(self, job_id: str) -> dict:
        """A failed job's flight-recorder dump
        (``GET /jobs/<id>/forensics``); 404s surface as
        :class:`ServiceError` with ``status == 404``."""
        return self._request("GET", f"/jobs/{job_id}/forensics")

    def events(self, since: int = 0, timeout: float = 0.0,
               limit: int = 500) -> dict:
        """The progress feed after cursor ``since`` (``GET /events``).

        ``timeout`` > 0 long-polls server-side; the socket timeout is
        widened to cover the poll, so a quiet feed returns an empty
        batch instead of raising.
        """
        path = f"/events?since={int(since)}&limit={int(limit)}"
        if timeout > 0:
            path += f"&timeout={timeout:g}"
        return self._request(
            "GET", path, timeout=self.timeout + max(0.0, timeout)
        )

    # -- conveniences ---------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 3600.0,
             poll_s: float = 0.25) -> dict:
        """Poll until the job finishes; returns the final record.

        Raises :class:`JobFailedError` (with a forensics pointer) when
        it finished ``failed`` and :class:`WaitTimeout` when the client
        gave up first.  Polls without the result payload and fetches it
        once, on completion.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id, include_result=False)
            if record["status"] == "failed":
                raise JobFailedError(record)
            if record["status"] == "done":
                return self.job(job_id)
            if time.monotonic() >= deadline:
                raise WaitTimeout(record, timeout)
            time.sleep(poll_s)

    def result(self, record_or_id: dict | str) -> "CompilationResult":
        """Decode a finished job into a :class:`CompilationResult`."""
        from repro.encodings.serialization import result_from_dict

        record = record_or_id
        if isinstance(record, str):
            record = self.job(record)
        payload = record.get("result")
        if payload is None:
            raise ServiceError(
                f"job {record.get('id', '?')[:12]} has no result "
                f"(status {record.get('status')})"
            )
        return result_from_dict(payload)

    def verify_proof(self, job_id: str) -> dict:
        """Fetch a job's served proof and re-check it *client-side*.

        The whole point of a DRAT certificate is that the consumer need
        not trust the producer: this pulls the stored trace over the wire
        and runs the independent checker
        (:func:`repro.sat.drat.check_trace`) locally.  Returns
        ``{"id", "proof", "verified", "reason", "steps",
        "checked_additions"}``; a sha256 mismatch between the served
        document and its advertised content address fails before the
        checker even runs.
        """
        from repro.sat.drat import ProofTrace, check_trace

        payload = self.proof(job_id)
        document = payload.get("trace")
        if document is None:
            raise ServiceError(
                f"job {payload.get('id', job_id)[:12]} served proof metadata "
                "but no trace artifact (cache disabled or artifact evicted)"
            )
        trace = ProofTrace.from_dict(document)
        advertised = (payload.get("proof") or {}).get("sha256")
        if advertised and trace.sha256() != advertised:
            return {
                "id": payload["id"],
                "proof": payload.get("proof"),
                "verified": False,
                "reason": "served trace does not match its advertised sha256",
                "steps": 0,
                "checked_additions": 0,
            }
        report = check_trace(trace)
        return {
            "id": payload["id"],
            "proof": payload.get("proof"),
            "verified": report.ok,
            "reason": report.reason,
            "steps": report.steps,
            "checked_additions": report.checked_additions,
        }

    def submit_and_wait(self, spec: dict, timeout: float = 3600.0,
                        poll_s: float = 0.25) -> dict:
        """Submit, then :meth:`wait`; returns the final record."""
        record = self.submit(spec)
        return self.wait(record["id"], timeout=timeout, poll_s=poll_s)
