"""Rule engine for :mod:`repro.lint`: findings, suppression, baselines,
and the three output formats (human text, JSON, SARIF).

A rule is a :class:`Rule` record — id, severity, one-line summary, a
rationale, a minimal violating/fixed example pair (``repro lint
--explain``), and a checker ``Project -> list[Finding]``.  The engine
runs every enabled checker, drops findings silenced by inline
``# repro-lint: disable=RULE`` comments or a baseline file, and renders
the rest.  Exit-code policy: any live finding of severity ``error``
fails the run; warnings alone do not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.lint.project import Project, load_project

#: Schema version of the JSON report and baseline formats.
JSON_SCHEMA_VERSION = 1

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Rule id attached to files the parser rejects.
PARSE_RULE = "E001"


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule id, severity, location, message."""

    rule: str
    severity: str
    path: str      # project-relative, posix separators
    line: int
    message: str

    def baseline_key(self) -> tuple[str, str, str]:
        """Line-insensitive identity so baselines survive unrelated edits."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """One lint rule: metadata plus its checker."""

    id: str
    severity: str
    summary: str
    rationale: str
    bad_example: str
    good_example: str
    checker: "object" = None  # Callable[[Project], list[Finding]]

    def run(self, project: Project) -> list[Finding]:
        return list(self.checker(project, self))


def all_rules() -> list[Rule]:
    """Every registered rule, invariant family first."""
    from repro.lint import concurrency, invariants

    return [*invariants.RULES, *concurrency.RULES]


def rules_by_id() -> dict[str, Rule]:
    return {rule.id: rule for rule in all_rules()}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]                 # live findings, sorted
    suppressed: int = 0                     # count silenced inline
    baselined: int = 0                      # count matched by the baseline
    stale_baseline: list[dict] = field(default_factory=list)
    files: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_ERROR)

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    # -- renderers ----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": JSON_SCHEMA_VERSION,
            "files": self.files,
            "rules": self.rules,
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {
                "errors": self.errors,
                "warnings": len(self.findings) - self.errors,
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "stale_baseline": len(self.stale_baseline),
            },
        }

    def to_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.rule} "
                f"[{finding.severity}] {finding.message}"
            )
        noun = "finding" if len(self.findings) == 1 else "findings"
        tail = (
            f"{len(self.findings)} {noun} "
            f"({self.errors} errors) in {self.files} files"
        )
        extras = []
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed inline")
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        if self.stale_baseline:
            extras.append(f"{len(self.stale_baseline)} stale baseline entries")
        if extras:
            tail += " · " + ", ".join(extras)
        lines.append(tail)
        return "\n".join(lines)

    def to_sarif(self) -> dict:
        """A minimal SARIF 2.1.0 document (one run, one driver)."""
        rule_ids = sorted({finding.rule for finding in self.findings})
        known = rules_by_id()
        sarif_rules = []
        for rule_id in rule_ids:
            rule = known.get(rule_id)
            sarif_rules.append({
                "id": rule_id,
                "shortDescription": {
                    "text": rule.summary if rule else "parse failure",
                },
            })
        results = []
        for finding in self.findings:
            results.append({
                "ruleId": finding.rule,
                "level": "error" if finding.severity == SEVERITY_ERROR else "warning",
                "message": {"text": finding.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {"startLine": finding.line},
                    },
                }],
            })
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "repro-lint",
                    "rules": sarif_rules,
                }},
                "results": results,
            }],
        }


def load_baseline(path: str) -> list[dict]:
    """Baseline file: ``{"version": 1, "entries": [{rule, path, message}]}``."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    entries = data.get("entries", []) if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ValueError(f"malformed baseline file: {path}")
    return [entry for entry in entries if isinstance(entry, dict)]


def baseline_dict(report: LintReport) -> dict:
    """A baseline capturing every live finding of *report*."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "entries": [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in report.findings
        ],
    }


def run_lint(
    paths: list[str],
    root: str | None = None,
    rules: list[str] | None = None,
    baseline: list[dict] | None = None,
) -> LintReport:
    """Lint *paths* and return the report.

    Args:
        paths: files or directories to analyze.
        root: directory findings are reported relative to (default cwd).
        rules: rule-id allowlist (``None`` enables everything).
        baseline: accepted findings (see :func:`load_baseline`); matching
            live findings are filtered out, and baseline entries that no
            longer match anything are reported as stale.
    """
    project = load_project(paths, root=root)
    enabled = all_rules()
    if rules is not None:
        wanted = set(rules)
        unknown = wanted - {rule.id for rule in enabled} - {PARSE_RULE}
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
        enabled = [rule for rule in enabled if rule.id in wanted]

    raw_set: set[Finding] = set()
    raw: list[Finding] = []
    for source_file in project.files:
        if source_file.parse_error is not None:
            raw.append(Finding(
                rule=PARSE_RULE, severity=SEVERITY_ERROR,
                path=source_file.rel, line=1,
                message=source_file.parse_error,
            ))
    for rule in enabled:
        for finding in rule.run(project):
            if finding not in raw_set:
                raw_set.add(finding)
                raw.append(finding)

    live: list[Finding] = []
    suppressed = 0
    for finding in raw:
        source_file = project.by_rel.get(finding.path)
        if source_file is not None and source_file.is_suppressed(
            finding.rule, finding.line
        ):
            suppressed += 1
        else:
            live.append(finding)

    baselined = 0
    stale: list[dict] = []
    if baseline:
        keys = {
            (e.get("rule"), e.get("path"), e.get("message")) for e in baseline
        }
        kept = []
        matched: set[tuple] = set()
        for finding in live:
            key = finding.baseline_key()
            if key in keys:
                baselined += 1
                matched.add(key)
            else:
                kept.append(finding)
        live = kept
        stale = [
            entry for entry in baseline
            if (entry.get("rule"), entry.get("path"), entry.get("message"))
            not in matched
        ]

    live.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return LintReport(
        findings=live,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        files=len(project.files),
        rules=[rule.id for rule in enabled],
    )
