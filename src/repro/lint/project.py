"""Shared AST project model for :mod:`repro.lint`.

Every rule operates on one :class:`Project`: the parsed ASTs of the
files under analysis plus the cross-file indexes the analyzers need —
dataclass field tables (with has-default flags), per-class attribute
types inferred from ``__init__``, lock attributes, import maps, and the
``# repro-lint:`` directive comments (suppressions and markers).

Everything here is stdlib-only by construction (``ast`` + ``tokenize``);
the linter must be runnable on a bare interpreter, before any project
dependency is importable.
"""

from __future__ import annotations

import ast
import io
import os
import sys
import tokenize
from dataclasses import dataclass, field

#: Comment prefix of every lint directive.
DIRECTIVE_PREFIX = "repro-lint:"

#: Marker words (``# repro-lint: <word>``) with rule-level meaning.
MARKER_HOT_PATH = "hot-path"
MARKER_WORKER_SHIPPED = "worker-shipped"

#: ``threading`` factories whose product is a mutual-exclusion primitive
#: for the purposes of the concurrency rules.
_LOCK_FACTORIES = {
    "Lock": "Lock",
    "RLock": "RLock",
    "Condition": "Condition",
}


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotation_class_name(annotation: ast.expr | None) -> str | None:
    """The bare class name an annotation points at, or ``None``.

    Strips ``Optional[X]``, ``X | None``, string quoting, and dotted
    module prefixes — ``"CompilationCache | None"`` resolves to
    ``CompilationCache``.  Unions of two real classes resolve to nothing
    (ambiguous).
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        sides = [annotation.left, annotation.right]
        names = [annotation_class_name(side) for side in sides]
        real = [name for name in names if name is not None]
        return real[0] if len(real) == 1 else None
    if isinstance(annotation, ast.Subscript):
        base = _dotted(annotation.value)
        if base and base.split(".")[-1] == "Optional":
            return annotation_class_name(annotation.slice)
        return None
    if isinstance(annotation, ast.Constant) and annotation.value is None:
        return None
    dotted = _dotted(annotation)
    if dotted is None:
        return None
    tail = dotted.split(".")[-1]
    return tail if tail != "None" else None


def lock_kind_of_call(node: ast.expr) -> str | None:
    """``"Lock"``/``"RLock"``/``"Condition"`` when *node* constructs one."""
    if not isinstance(node, ast.Call):
        return None
    dotted = _dotted(node.func)
    if dotted is None:
        return None
    tail = dotted.split(".")[-1]
    return _LOCK_FACTORIES.get(tail)


def lock_kind_of_annotation(annotation: ast.expr | None) -> str | None:
    name = annotation_class_name(annotation)
    if name in _LOCK_FACTORIES:
        return name
    return None


@dataclass
class FunctionInfo:
    """One function or method."""

    name: str
    qualname: str              # "Class.method" or "function"
    node: ast.FunctionDef
    file: "SourceFile"
    cls: str | None = None     # owning class name, if a method

    @property
    def return_class(self) -> str | None:
        return annotation_class_name(self.node.returns)


@dataclass
class ClassInfo:
    """One class: methods, attribute types, and lock attributes."""

    name: str
    node: ast.ClassDef
    file: "SourceFile"
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.x`` → class name, from ``__init__`` assignments.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: ``self.x`` → lock kind for attributes holding threading primitives.
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: attributes assigned from unpicklable factories (lock or ``open``),
    #: with the assignment line — the L005 evidence.
    unpicklable_attrs: dict[str, int] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)

    @property
    def defines_pickle_protocol(self) -> bool:
        return bool(
            {"__getstate__", "__reduce__", "__reduce_ex__"} & set(self.methods)
        )

    def is_dataclass(self) -> bool:
        for decorator in self.node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            dotted = _dotted(target)
            if dotted and dotted.split(".")[-1] == "dataclass":
                return True
        return False

    def dataclass_fields(self) -> dict[str, bool]:
        """Field name → has-default, for ``@dataclass`` classes.

        Class-level ``x: T`` statements in declaration order; ``x: T = v``
        and ``x: T = field(default=...)`` count as defaulted (a bare
        ``field()`` with neither default does not).
        """
        fields: dict[str, bool] = {}
        for statement in self.node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            if not isinstance(statement.target, ast.Name):
                continue
            name = statement.target.id
            if annotation_class_name(statement.annotation) == "ClassVar":
                continue
            dotted = _dotted(statement.annotation) or ""
            if dotted.split(".")[-1] == "ClassVar" or (
                isinstance(statement.annotation, ast.Subscript)
                and (_dotted(statement.annotation.value) or "").split(".")[-1]
                == "ClassVar"
            ):
                continue
            has_default = statement.value is not None
            if has_default and isinstance(statement.value, ast.Call):
                target = _dotted(statement.value.func) or ""
                if target.split(".")[-1] == "field":
                    keywords = {kw.arg for kw in statement.value.keywords}
                    has_default = bool(
                        {"default", "default_factory"} & keywords
                    )
            fields[name] = has_default
        return fields


@dataclass
class SourceFile:
    """One parsed source file plus its lint directives."""

    path: str                  # absolute
    rel: str                   # project-relative, posix separators
    text: str
    tree: ast.Module | None
    parse_error: str | None = None
    #: line → suppressed rule ids (``{"all"}`` suppresses everything).
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    #: line → marker word (``hot-path`` / ``worker-shipped``).
    markers: dict[int, str] = field(default_factory=dict)
    #: alias → dotted module, from ``import a.b as c`` / ``from a import b``.
    module_aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``NAME = threading.Lock()`` assignments.
    module_locks: dict[str, str] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """A ``# repro-lint: disable=`` comment on the flagged line or the
        line directly above silences the finding."""
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules and ("all" in rules or rule in rules):
                return True
        return False

    def marker_near(self, lineno: int, word: str) -> bool:
        """A marker on the ``def``/``class`` line itself or up to two
        lines above (room for one decorator line or a comment block)."""
        for candidate in range(max(1, lineno - 2), lineno + 1):
            if self.markers.get(candidate) == word:
                return True
        return False


def _scan_directives(source_file: SourceFile) -> None:
    """Populate suppressions/markers from ``# repro-lint:`` comments."""
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source_file.text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string.lstrip("#").strip()
        if not comment.startswith(DIRECTIVE_PREFIX):
            continue
        directive = comment[len(DIRECTIVE_PREFIX):].strip()
        line = token.start[0]
        if directive.startswith("disable="):
            rules = frozenset(
                rule.strip() for rule in directive[len("disable="):].split(",")
                if rule.strip()
            )
            if rules:
                source_file.suppressions[line] = rules
        elif directive in (MARKER_HOT_PATH, MARKER_WORKER_SHIPPED):
            source_file.markers[line] = directive


def _index_imports(source_file: SourceFile) -> None:
    tree = source_file.tree
    if tree is None:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                source_file.module_aliases[name] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                name = alias.asname or alias.name
                source_file.module_aliases[name] = f"{node.module}.{alias.name}"


def _index_class(source_file: SourceFile, node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(name=node.name, node=node, file=source_file)
    info.bases = [base for base in (_dotted(b) for b in node.bases) if base]
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef):
            info.methods[statement.name] = FunctionInfo(
                name=statement.name,
                qualname=f"{node.name}.{statement.name}",
                node=statement,
                file=source_file,
                cls=node.name,
            )
    init = info.methods.get("__init__")
    if init is not None:
        _index_init(info, init.node)
    return info


def _iter_statements_in_order(body: list[ast.stmt]):
    """Statements in source order, without descending into nested
    function or class definitions."""
    for statement in body:
        yield statement
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            continue
        for attr in ("body", "orelse", "finalbody"):
            nested = getattr(statement, attr, None)
            if nested:
                yield from _iter_statements_in_order(nested)
        for handler in getattr(statement, "handlers", []):
            yield from _iter_statements_in_order(handler.body)


def _classify_value(value: ast.expr, locals_locks: dict[str, str],
                    locals_types: dict[str, str]) -> tuple[str, str] | None:
    """``("lock", kind)`` / ``("open", "")`` / ``("class", Name)`` for an
    assigned value, following ``A() if x is None else x`` either way."""
    kind = lock_kind_of_call(value)
    if kind is not None:
        return ("lock", kind)
    if isinstance(value, ast.IfExp):
        return (
            _classify_value(value.body, locals_locks, locals_types)
            or _classify_value(value.orelse, locals_locks, locals_types)
        )
    if isinstance(value, ast.Call):
        func = _dotted(value.func)
        if func is not None:
            tail = func.split(".")[-1]
            if tail == "open":
                return ("open", "")
            if tail and tail[0].isupper():
                return ("class", tail)
        return None
    if isinstance(value, ast.Name):
        if value.id in locals_locks:
            return ("lock", locals_locks[value.id])
        if value.id in locals_types:
            return ("class", locals_types[value.id])
    return None


def _index_init(info: ClassInfo, init: ast.FunctionDef) -> None:
    """Infer ``self.x`` attribute types and lock attributes from
    ``__init__``: direct lock construction, known-class construction,
    parameter pass-through (typed by annotation, possibly rebound
    locally first), and ``open(...)``."""
    locals_locks: dict[str, str] = {}
    locals_types: dict[str, str] = {}
    args = init.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        kind = lock_kind_of_annotation(arg.annotation)
        if kind is not None:
            locals_locks[arg.arg] = kind
            continue
        class_name = annotation_class_name(arg.annotation)
        if class_name is not None:
            locals_types[arg.arg] = class_name
    for statement in _iter_statements_in_order(init.body):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        if value is None:
            continue
        classified = _classify_value(value, locals_locks, locals_types)
        for target in targets:
            if isinstance(target, ast.Name):
                if classified is None:
                    locals_locks.pop(target.id, None)
                    locals_types.pop(target.id, None)
                elif classified[0] == "lock":
                    locals_locks[target.id] = classified[1]
                elif classified[0] == "class":
                    locals_types[target.id] = classified[1]
                continue
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if classified is not None and classified[0] == "lock":
                info.lock_attrs[attr] = classified[1]
                info.unpicklable_attrs.setdefault(attr, statement.lineno)
            elif classified is not None and classified[0] == "open":
                info.unpicklable_attrs.setdefault(attr, statement.lineno)
            elif classified is not None and classified[0] == "class":
                info.attr_types.setdefault(attr, classified[1])
            elif isinstance(statement, ast.AnnAssign):
                kind = lock_kind_of_annotation(statement.annotation)
                if kind is not None:
                    info.lock_attrs[attr] = kind
                    info.unpicklable_attrs.setdefault(attr, statement.lineno)
                    continue
                class_name = annotation_class_name(statement.annotation)
                if class_name is not None:
                    info.attr_types.setdefault(attr, class_name)


def _index_file(source_file: SourceFile) -> None:
    tree = source_file.tree
    if tree is None:
        return
    _scan_directives(source_file)
    _index_imports(source_file)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            source_file.functions[node.name] = FunctionInfo(
                name=node.name, qualname=node.name, node=node, file=source_file
            )
        elif isinstance(node, ast.ClassDef):
            source_file.classes[node.name] = _index_class(source_file, node)
        elif isinstance(node, ast.Assign):
            kind = lock_kind_of_call(node.value)
            if kind is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        source_file.module_locks[target.id] = kind


class Project:
    """The parsed file set plus cross-file indexes."""

    def __init__(self, root: str, files: list[SourceFile]):
        self.root = root
        self.files = files
        self.by_rel = {f.rel: f for f in files}
        #: class name → ClassInfo (first definition wins on collision —
        #: class names are unique in this codebase; fixtures keep it so).
        self.classes: dict[str, ClassInfo] = {}
        for source_file in files:
            for name, info in source_file.classes.items():
                self.classes.setdefault(name, info)
        #: top-level package/module names present in the tree, used to
        #: recognize intra-project imports.
        self.top_names: set[str] = set()
        for source_file in files:
            parts = source_file.rel.split("/")
            for index, part in enumerate(parts):
                if part == "src":
                    continue
                self.top_names.add(part[:-3] if part.endswith(".py") else part)
                break
            # also register every package directory on the path so
            # fixtures with nested layouts resolve their own imports
            for part in parts[:-1]:
                if part != "src":
                    self.top_names.add(part)

    def resolve_module_alias(self, source_file: SourceFile, name: str) -> SourceFile | None:
        """The project file an imported-module alias points at, if any."""
        dotted = source_file.module_aliases.get(name)
        if dotted is None:
            return None
        tail = dotted.replace(".", "/")
        for candidate in (f"{tail}.py", f"{tail}/__init__.py"):
            for rel, target in self.by_rel.items():
                if rel == candidate or rel.endswith("/" + candidate):
                    return target
        return None

    def iter_functions(self):
        """Every function and method in the project, depth-one only."""
        for source_file in self.files:
            yield from source_file.functions.values()
            for cls in source_file.classes.values():
                yield from cls.methods.values()


def collect_files(paths: list[str], root: str) -> list[str]:
    """Expand files/directories into a sorted ``.py`` file list."""
    found: set[str] = set()
    for path in paths:
        absolute = os.path.abspath(path)
        if os.path.isfile(absolute) and absolute.endswith(".py"):
            found.add(absolute)
        elif os.path.isdir(absolute):
            for dirpath, dirnames, filenames in os.walk(absolute):
                dirnames[:] = [
                    d for d in dirnames
                    if d not in ("__pycache__", ".git", ".mypy_cache")
                ]
                for filename in filenames:
                    if filename.endswith(".py"):
                        found.add(os.path.join(dirpath, filename))
    return sorted(found)


def load_project(paths: list[str], root: str | None = None) -> Project:
    """Parse *paths* (files or directories) into a :class:`Project`."""
    root = os.path.abspath(root or os.getcwd())
    files: list[SourceFile] = []
    for path in collect_files(paths, root):
        try:
            with open(path, encoding="utf-8", errors="replace") as handle:
                text = handle.read()
        except OSError as error:
            files.append(SourceFile(
                path=path, rel=_relpath(path, root), text="",
                tree=None, parse_error=str(error),
            ))
            continue
        tree: ast.Module | None
        parse_error: str | None = None
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as error:
            tree = None
            parse_error = f"syntax error: {error.msg} (line {error.lineno})"
        source_file = SourceFile(
            path=path, rel=_relpath(path, root), text=text,
            tree=tree, parse_error=parse_error,
        )
        _index_file(source_file)
        files.append(source_file)
    return Project(root, files)


def _relpath(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # different drive on Windows
        rel = path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def stdlib_module_names() -> frozenset[str]:
    return frozenset(sys.stdlib_module_names)
