"""``repro.lint`` — stdlib-only static analysis for the project's own
invariants.

Two rule families (see ``repro lint --explain RULE`` or the rule table
in docs/ARCHITECTURE.md):

* **L001–L005** — project contracts: config-field classification,
  hot-path telemetry gating, stdlib-only layer boundaries,
  serialization back-compat, worker picklability.
* **C001–C002** — a static race detector over the threaded subsystems:
  lock-order inversions and unguarded writes to lock-guarded state.

Inline suppression::

    something_flagged()  # repro-lint: disable=C002

Markers designate analysis scope::

    # repro-lint: hot-path         (function: L002 applies)
    # repro-lint: worker-shipped   (class: L005 applies)
"""

from repro.lint.engine import (
    Finding,
    JSON_SCHEMA_VERSION,
    LintReport,
    Rule,
    all_rules,
    baseline_dict,
    load_baseline,
    rules_by_id,
    run_lint,
)

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "Rule",
    "all_rules",
    "baseline_dict",
    "explain_rule",
    "load_baseline",
    "rules_by_id",
    "run_lint",
]


def explain_rule(rule_id: str) -> str:
    """Rationale plus a minimal violating/fixed example for one rule."""
    rule = rules_by_id().get(rule_id)
    if rule is None:
        known = ", ".join(sorted(rules_by_id()))
        raise ValueError(f"unknown rule {rule_id!r} (known: {known})")
    return "\n".join([
        f"{rule.id} [{rule.severity}] — {rule.summary}",
        "",
        rule.rationale,
        "",
        "Violating:",
        *(f"    {line}" for line in rule.bad_example.rstrip().splitlines()),
        "",
        "Fixed:",
        *(f"    {line}" for line in rule.good_example.rstrip().splitlines()),
    ])
