"""Project-invariant rules (L001–L005).

These encode conventions the codebase relies on but Python cannot
enforce: the fingerprint/execution-only split of config fields, the
zero-cost-when-off telemetry discipline in hot paths, the stdlib-only
layer contract, serialization back-compat, and picklability of objects
shipped to worker processes.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Finding, Rule, SEVERITY_ERROR
from repro.lint.project import (
    MARKER_HOT_PATH,
    MARKER_WORKER_SHIPPED,
    Project,
    SourceFile,
    _dotted,
    stdlib_module_names,
)

#: Layers that must import nothing beyond the stdlib and the project
#: itself (L003).  Matched against path segments, so both the package
#: directory form (``sat/``) and the single-module form (``chaos.py``)
#: are covered.  ``lint`` polices itself.
STDLIB_ONLY_LAYERS = frozenset(
    {"sat", "service", "telemetry", "chaos", "store", "parallel", "lint"}
)

#: Declared third-party exceptions for L003: project-relative path
#: suffix → importable top-level modules allowed there.  Empty today —
#: every stdlib-only layer really is stdlib-only — but this is the one
#: place a future exception (e.g. numpy in a new sat backend) must be
#: declared to land.
ALLOWED_THIRD_PARTY: dict[str, frozenset[str]] = {}

#: Names that identify a telemetry-ish object in hot paths (L002): the
#: facade itself, its sub-objects, and the ``_tele_*`` instrument
#: attributes the solver caches.
_TELEMETRY_NAMES = frozenset({"telemetry", "progress", "tracer", "metrics", "flight"})


# ---------------------------------------------------------------------------
# L001 — config fields classified: execution-only or fingerprinted
# ---------------------------------------------------------------------------

def _find_execution_only(project: Project):
    """``(file, lineno, fields)`` of the EXECUTION_ONLY_FIELDS tuple."""
    for source_file in project.files:
        if source_file.tree is None:
            continue
        for node in source_file.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "EXECUTION_ONLY_FIELDS":
                    names: list[str] = []
                    if isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
                        for element in node.value.elts:
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                names.append(element.value)
                    return source_file, node.lineno, names
    return None


def _find_config_class(project: Project, anchor_file: SourceFile):
    """The config dataclass: ``FermihedralConfig`` if present, else the
    first dataclass defined next to EXECUTION_ONLY_FIELDS (fixtures)."""
    info = project.classes.get("FermihedralConfig")
    if info is not None and info.is_dataclass():
        return info
    for info in anchor_file.classes.values():
        if info.is_dataclass():
            return info
    return None


def _fingerprint_reachable(function: ast.FunctionDef, config_fields,
                           execution_only) -> set[str]:
    """Field names that reach the canonical fingerprint payload.

    Two supported shapes: the fail-closed ``dataclasses.asdict`` +
    ``pop`` pattern (everything minus the popped keys — including the
    canonical ``for name in EXECUTION_ONLY_FIELDS: data.pop(name)``
    loop) and an explicit dict build (exactly the string keys
    mentioned).
    """
    uses_asdict = False
    popped: set[str] = set()
    explicit: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            iter_name = _dotted(node.iter) or ""
            if iter_name.split(".")[-1] == "EXECUTION_ONLY_FIELDS":
                loop_var = node.target.id
                for call in ast.walk(node):
                    if (
                        isinstance(call, ast.Call)
                        and (_dotted(call.func) or "").split(".")[-1] == "pop"
                        and call.args
                        and isinstance(call.args[0], ast.Name)
                        and call.args[0].id == loop_var
                    ):
                        popped.update(execution_only)
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func) or ""
            tail = dotted.split(".")[-1]
            if tail == "asdict":
                uses_asdict = True
            elif tail == "pop" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    popped.add(first.value)
            elif tail == "get" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    explicit.add(first.value)
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    explicit.add(key.value)
        elif isinstance(node, ast.Subscript):
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, str
            ):
                explicit.add(node.slice.value)
        elif isinstance(node, ast.Attribute):
            # explicit ``config.field`` reads also pull a field in
            if node.attr in config_fields:
                explicit.add(node.attr)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.slice, ast.Constant
                ) and isinstance(target.slice.value, str):
                    popped.add(target.slice.value)
    if uses_asdict:
        return set(config_fields) - popped
    return explicit & set(config_fields)


def check_l001(project: Project, rule: Rule) -> list[Finding]:
    anchor = _find_execution_only(project)
    if anchor is None:
        return []
    anchor_file, anchor_line, execution_only = anchor
    config = _find_config_class(project, anchor_file)
    if config is None:
        return []
    fields = config.dataclass_fields()

    canonical = None
    for source_file in project.files:
        candidate = source_file.functions.get("canonical_config")
        if candidate is not None:
            canonical = candidate
            break
    if canonical is None:
        return []  # partial lint run: fingerprint module not in scope
    reachable = _fingerprint_reachable(canonical.node, fields, execution_only)

    field_lines = {
        statement.target.id: statement.lineno
        for statement in config.node.body
        if isinstance(statement, ast.AnnAssign)
        and isinstance(statement.target, ast.Name)
    }

    findings = []
    for name in fields:
        line = field_lines.get(name, config.node.lineno)
        if name in execution_only and name in reachable:
            findings.append(Finding(
                rule=rule.id, severity=rule.severity,
                path=config.file.rel, line=line,
                message=(
                    f"execution-only config field {name!r} still reaches the "
                    "fingerprint: canonical_config() must drop it or the "
                    "EXECUTION_ONLY_FIELDS entry must go"
                ),
            ))
        elif name not in execution_only and name not in reachable:
            findings.append(Finding(
                rule=rule.id, severity=rule.severity,
                path=config.file.rel, line=line,
                message=(
                    f"config field {name!r} is unclassified: add it to "
                    "EXECUTION_ONLY_FIELDS or make canonical_config() "
                    "fingerprint it — an unclassified knob silently poisons "
                    "cache keys"
                ),
            ))
    for name in execution_only:
        if name not in fields:
            findings.append(Finding(
                rule=rule.id, severity=rule.severity,
                path=anchor_file.rel, line=anchor_line,
                message=(
                    f"EXECUTION_ONLY_FIELDS names {name!r}, which is not a "
                    "field of the config dataclass (stale entry)"
                ),
            ))
    return findings


# ---------------------------------------------------------------------------
# L002 — hot paths gate telemetry behind `telemetry is None`-style checks
# ---------------------------------------------------------------------------

def _telemetryish(expr: ast.expr) -> str | None:
    """Dotted name when *expr* denotes a telemetry-ish object."""
    dotted = _dotted(expr)
    if dotted is None:
        return None
    for segment in dotted.split("."):
        if segment in _TELEMETRY_NAMES or segment.startswith("_tele"):
            return dotted
    return None


def _guard_polarity(test: ast.expr) -> tuple[bool, bool]:
    """``(guards_body, guards_after_exit)`` for an if-test.

    ``guards_body``: the true branch proves a telemetry object non-None
    (``X is not None``, bare ``X``, or an ``and`` chain containing one).
    ``guards_after_exit``: the true branch proves it None (``X is None``,
    ``not X``) — so when that branch terminates, the code after the
    ``if`` is guarded.
    """
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left = _telemetryish(test.left)
        is_none = (
            len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        )
        if left and is_none:
            if isinstance(test.ops[0], ast.IsNot):
                return True, False
            if isinstance(test.ops[0], ast.Is):
                return False, True
    if _telemetryish(test):
        return True, False
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        if _telemetryish(test.operand):
            return False, True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        body = any(_guard_polarity(value)[0] for value in test.values)
        return body, False
    return False, False


def _terminates(statements: list[ast.stmt]) -> bool:
    return bool(statements) and isinstance(
        statements[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class _HotPathChecker:
    """Flags telemetry attribute-calls not dominated by a gate.

    Passing a telemetry object as a *call argument* (the ``_span(telemetry,
    ...)`` helper idiom) is always allowed — only attribute access on a
    possibly-None object costs anything in the hot loop.
    """

    def __init__(self, rule: Rule, source_file: SourceFile, qualname: str):
        self.rule = rule
        self.file = source_file
        self.qualname = qualname
        self.findings: list[Finding] = []

    def check(self, function: ast.FunctionDef) -> list[Finding]:
        self._statements(function.body, guarded=False)
        return self.findings

    def _statements(self, statements: list[ast.stmt], guarded: bool) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # a closure runs later; gates at the definition site do
                # not dominate its body
                outer = self.qualname
                self.qualname = f"{outer}.{statement.name}"
                self._statements(statement.body, guarded=False)
                self.qualname = outer
                continue
            if isinstance(statement, ast.If):
                guards_body, guards_exit = _guard_polarity(statement.test)
                self._expression(statement.test, guarded)
                self._statements(statement.body, guarded or guards_body)
                self._statements(statement.orelse, guarded or guards_exit)
                if (
                    guards_exit
                    and _terminates(statement.body)
                    and not statement.orelse
                ):
                    guarded = True
                continue
            if isinstance(statement, (ast.For, ast.AsyncFor)):
                self._expression(statement.iter, guarded)
                self._statements(statement.body, guarded)
                self._statements(statement.orelse, guarded)
                continue
            if isinstance(statement, ast.While):
                self._expression(statement.test, guarded)
                self._statements(statement.body, guarded)
                self._statements(statement.orelse, guarded)
                continue
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    self._expression(item.context_expr, guarded)
                self._statements(statement.body, guarded)
                continue
            if isinstance(statement, ast.Try):
                self._statements(statement.body, guarded)
                for handler in statement.handlers:
                    self._statements(handler.body, guarded)
                self._statements(statement.orelse, guarded)
                self._statements(statement.finalbody, guarded)
                continue
            if isinstance(statement, ast.ClassDef):
                continue
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self._expression(child, guarded)

    def _expression(self, expr: ast.expr, guarded: bool) -> None:
        if isinstance(expr, ast.IfExp):
            guards_body, guards_exit = _guard_polarity(expr.test)
            self._expression(expr.test, guarded)
            self._expression(expr.body, guarded or guards_body)
            self._expression(expr.orelse, guarded or guards_exit)
            return
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
            accumulated = guarded
            for value in expr.values:
                self._expression(value, accumulated)
                accumulated = accumulated or _guard_polarity(value)[0]
            return
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Attribute) and not guarded:
                target = _telemetryish(expr.func.value)
                if target is not None:
                    self.findings.append(Finding(
                        rule=self.rule.id, severity=self.rule.severity,
                        path=self.file.rel, line=expr.lineno,
                        message=(
                            f"unguarded telemetry call "
                            f"{target}.{expr.func.attr}(...) in hot-path "
                            f"function {self.qualname!r}; dominate it with "
                            "an `if telemetry is None`-style gate (the "
                            "zero-cost-when-off contract)"
                        ),
                    ))
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._expression(child, guarded)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expression(child, guarded)


def check_l002(project: Project, rule: Rule) -> list[Finding]:
    findings = []
    for source_file in project.files:
        if source_file.tree is None or not source_file.markers:
            continue
        stack: list[tuple[ast.AST, str]] = [(source_file.tree, "")]
        while stack:
            node, prefix = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{child.name}"
                    if isinstance(child, ast.FunctionDef) and source_file.marker_near(
                        child.lineno, MARKER_HOT_PATH
                    ):
                        checker = _HotPathChecker(rule, source_file, qualname)
                        findings.extend(checker.check(child))
                    stack.append((child, f"{qualname}."))
                elif isinstance(child, ast.ClassDef):
                    stack.append((child, f"{prefix}{child.name}."))
    return findings


# ---------------------------------------------------------------------------
# L003 — stdlib-only import boundary
# ---------------------------------------------------------------------------

def _layer_of(rel: str) -> str | None:
    parts = rel.split("/")
    # Nearest enclosing package wins, so a fixture tree like
    # tests/lint/fixtures/.../sat/bad.py reports layer 'sat', not 'lint'.
    for part in reversed(parts[:-1]):
        if part in STDLIB_ONLY_LAYERS:
            return part
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if stem in STDLIB_ONLY_LAYERS:
        return stem
    return None


def check_l003(project: Project, rule: Rule) -> list[Finding]:
    stdlib = stdlib_module_names()
    findings = []
    for source_file in project.files:
        if source_file.tree is None:
            continue
        layer = _layer_of(source_file.rel)
        if layer is None:
            continue
        allowed: set[str] = set()
        for suffix, modules in ALLOWED_THIRD_PARTY.items():
            if source_file.rel.endswith(suffix):
                allowed |= set(modules)
        for node in ast.walk(source_file.tree):
            imported: list[tuple[str, int]] = []
            if isinstance(node, ast.Import):
                imported = [(alias.name.split(".")[0], node.lineno)
                            for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative import: intra-package by definition
                imported = [(node.module.split(".")[0], node.lineno)]
            for top, lineno in imported:
                if top in stdlib or top in project.top_names or top in allowed:
                    continue
                findings.append(Finding(
                    rule=rule.id, severity=rule.severity,
                    path=source_file.rel, line=lineno,
                    message=(
                        f"layer {layer!r} is stdlib-only by contract but "
                        f"imports {top!r}; declare an exception in "
                        "repro.lint.invariants.ALLOWED_THIRD_PARTY if this "
                        "dependency is intentional"
                    ),
                ))
    return findings


# ---------------------------------------------------------------------------
# L004 — from_dict back-compat: defaulted fields read with .get()
# ---------------------------------------------------------------------------

def _bare_subscripts(expr: ast.expr):
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            base = _dotted(node.value)
            if base is not None:
                yield node, base, node.slice.value


def _dataclass_tables(project: Project) -> dict[str, dict[str, bool]]:
    tables = {}
    for name, info in project.classes.items():
        if info.is_dataclass():
            fields = info.dataclass_fields()
            if fields:
                tables[name] = fields
    return tables


def check_l004(project: Project, rule: Rule) -> list[Finding]:
    tables = _dataclass_tables(project)
    if not tables:
        return []
    findings = []
    for source_file in project.files:
        if source_file.tree is None:
            continue
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not (node.name == "from_dict" or node.name.endswith("_from_dict")):
                continue
            enclosing = _enclosing_class(source_file, node)
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                target = _dotted(call.func)
                if target is None:
                    continue
                tail = target.split(".")[-1]
                if tail == "cls" and enclosing in tables:
                    tail = enclosing
                fields = tables.get(tail)
                if fields is None:
                    continue
                ordered = list(fields)
                bindings: list[tuple[str, ast.expr]] = []
                for index, arg in enumerate(call.args):
                    if index < len(ordered):
                        bindings.append((ordered[index], arg))
                for keyword in call.keywords:
                    if keyword.arg is not None:
                        bindings.append((keyword.arg, keyword.value))
                for field_name, value in bindings:
                    if not fields.get(field_name, False):
                        continue  # required field: bare subscript is fine
                    for sub, base, key in _bare_subscripts(value):
                        findings.append(Finding(
                            rule=rule.id, severity=rule.severity,
                            path=source_file.rel, line=sub.lineno,
                            message=(
                                f"back-compat: defaulted field "
                                f"{field_name!r} of {tail} is read with a "
                                f"bare subscript {base}[{key!r}] in "
                                f"{node.name}(); use .get({key!r}, ...) so "
                                "payloads serialized before the field "
                                "existed still decode"
                            ),
                        ))
    return findings


def _enclosing_class(source_file: SourceFile, function: ast.FunctionDef) -> str | None:
    for info in source_file.classes.values():
        if function in info.node.body:
            return info.name
    return None


# ---------------------------------------------------------------------------
# L005 — worker-shipped objects must pickle cleanly
# ---------------------------------------------------------------------------

def check_l005(project: Project, rule: Rule) -> list[Finding]:
    findings = []
    for source_file in project.files:
        for info in source_file.classes.values():
            if not source_file.marker_near(info.node.lineno, MARKER_WORKER_SHIPPED):
                continue
            if not info.unpicklable_attrs or info.defines_pickle_protocol:
                continue
            attrs = ", ".join(
                f"self.{name} (line {line})"
                for name, line in sorted(info.unpicklable_attrs.items())
            )
            findings.append(Finding(
                rule=rule.id, severity=rule.severity,
                path=source_file.rel, line=info.node.lineno,
                message=(
                    f"worker-shipped class {info.name!r} holds unpicklable "
                    f"state ({attrs}) but defines no __getstate__/"
                    "__reduce__; it will crash the first time it crosses "
                    "a process boundary"
                ),
            ))
    return findings


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

RULES = [
    Rule(
        id="L001",
        severity=SEVERITY_ERROR,
        summary="every config field classified: execution-only or fingerprinted",
        rationale=(
            "Cache keys are built from canonical_config(), which drops the "
            "EXECUTION_ONLY_FIELDS. A new FermihedralConfig knob that is in "
            "neither set changes results without changing fingerprints (or "
            "vice versa), silently poisoning the compilation cache. The rule "
            "forces every field into exactly one camp."
        ),
        bad_example=(
            "@dataclass(frozen=True)\n"
            "class FermihedralConfig:\n"
            "    budget: int = 0\n"
            "    shiny_new_knob: bool = False   # in neither set -> L001\n"
        ),
        good_example=(
            "EXECUTION_ONLY_FIELDS = (..., \"shiny_new_knob\")\n"
            "# or: let canonical_config()'s asdict() path fingerprint it\n"
        ),
        checker=check_l001,
    ),
    Rule(
        id="L002",
        severity=SEVERITY_ERROR,
        summary="hot paths gate telemetry behind `telemetry is None` checks",
        rationale=(
            "The solver's propagate/analyze loop and the descent rung loop "
            "run millions of iterations; telemetry must cost zero when off. "
            "Functions marked `# repro-lint: hot-path` may only touch "
            "telemetry objects under a dominating None-gate. Passing "
            "telemetry as a call argument (the _span(telemetry, ...) idiom) "
            "is always fine — only attribute access on a possibly-None "
            "object is flagged."
        ),
        bad_example=(
            "# repro-lint: hot-path\n"
            "def solve(self):\n"
            "    self.telemetry.counter(\"x\").inc()   # unguarded -> L002\n"
        ),
        good_example=(
            "# repro-lint: hot-path\n"
            "def solve(self):\n"
            "    if self.telemetry is not None:\n"
            "        self.telemetry.counter(\"x\").inc()\n"
        ),
        checker=check_l002,
    ),
    Rule(
        id="L003",
        severity=SEVERITY_ERROR,
        summary="sat/service/telemetry/chaos/store/parallel/lint are stdlib-only",
        rationale=(
            "The solver, service, and tooling layers must run on a bare "
            "interpreter: workers spawn them in subprocesses, CI smoke jobs "
            "import them before dependencies install, and the linter itself "
            "must lint a broken tree. Third-party imports are allowed only "
            "via an explicit ALLOWED_THIRD_PARTY declaration."
        ),
        bad_example=(
            "# src/repro/sat/fancy.py\n"
            "import numpy as np            # undeclared -> L003\n"
        ),
        good_example=(
            "# repro/lint/invariants.py\n"
            "ALLOWED_THIRD_PARTY = {\"sat/fancy.py\": frozenset({\"numpy\"})}\n"
        ),
        checker=check_l003,
    ),
    Rule(
        id="L004",
        severity=SEVERITY_ERROR,
        summary="from_dict reads defaulted fields with .get(), never d[...]",
        rationale=(
            "Serialized payloads outlive the code that wrote them: caches, "
            "checkpoints, and proof artifacts from older versions must keep "
            "loading. A dataclass field added later always has a default; "
            "its from_dict read must be .get(key, default) so pre-field "
            "payloads decode. Required (no-default) fields may subscript — "
            "their absence is corruption, and KeyError is the right noise."
        ),
        bad_example=(
            "return DescentResult(\n"
            "    weight=data[\"weight\"],          # required: fine\n"
            "    degraded=data[\"degraded\"],      # defaulted -> L004\n"
            ")\n"
        ),
        good_example=(
            "return DescentResult(\n"
            "    weight=data[\"weight\"],\n"
            "    degraded=data.get(\"degraded\", False),\n"
            ")\n"
        ),
        checker=check_l004,
    ),
    Rule(
        id="L005",
        severity=SEVERITY_ERROR,
        summary="worker-shipped classes with locks/handles define __getstate__",
        rationale=(
            "Objects crossing the ProcessBatchExecutor/portfolio boundary "
            "are pickled. threading primitives and open file handles do not "
            "pickle; a class marked `# repro-lint: worker-shipped` that "
            "holds one must define __getstate__/__reduce__ (the "
            "CompilationCache.__getstate__ and PauliString.__reduce__ "
            "lessons, as a rule)."
        ),
        bad_example=(
            "# repro-lint: worker-shipped\n"
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()   # no __getstate__ -> L005\n"
        ),
        good_example=(
            "    def __getstate__(self):\n"
            "        return {\"root\": self.root}     # rebuild the lock on load\n"
        ),
        checker=check_l005,
    ),
]
