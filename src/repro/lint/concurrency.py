"""Static concurrency analysis (C001/C002): a lock-acquisition graph
over the threaded subsystems, plus a guarded-attribute write checker.

The analyzer models each ``threading.Lock``/``RLock``/``Condition``
attribute (and module-level lock) as a node.  ``with self._lock:``
regions are tracked positionally — a call lexically *after* a ``with``
block (the ``render()`` copy-then-call-hooks idiom) is correctly outside
the region.  Calls inside a region add edges from every held lock to
every lock the callee may transitively acquire; locks handed to other
constructors (``MetricFamily(..., self._lock)``) are unified so the
registry's shared-RLock plumbing reads as one node.

* **C001** — a cycle in the may-acquire graph (lock-order inversion:
  two threads taking the same locks in opposite orders can deadlock),
  or re-acquisition of a non-reentrant ``Lock`` while already held.
* **C002** — an attribute written under a class's own lock in one
  method is *guarded*; writing it elsewhere without the lock is a data
  race.  ``__init__``/``__setstate__`` are exempt (no concurrent access
  yet), and so are underscore-helpers whose every resolved call site
  holds the lock — the codebase's documented "(lock held)" pattern.

The model is deliberately conservative where it cannot resolve a
callee (first-class functions, hooks, sinks): unknown calls add no
edges.  That is the right polarity for C001 — the hook idioms the
codebase uses are exactly the ones that move unknown calls *outside*
lock regions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.engine import Finding, Rule, SEVERITY_ERROR
from repro.lint.project import (
    ClassInfo,
    FunctionInfo,
    Project,
    SourceFile,
    _dotted,
    annotation_class_name,
    lock_kind_of_call,
)

#: Methods where unguarded writes are fine: the object is not yet (or no
#: longer) shared between threads.
_WRITE_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__setstate__", "__del__"})


class _LockUnion:
    """Union-find over lock ids, for shared-lock aliasing."""

    def __init__(self):
        self._parent: dict[str, str] = {}

    def find(self, lock: str) -> str:
        parent = self._parent.setdefault(lock, lock)
        if parent != lock:
            parent = self.find(parent)
            self._parent[lock] = parent
        return parent

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # prefer the lexically smaller root so runs are deterministic
            keep, drop = sorted((ra, rb))
            self._parent[drop] = keep


@dataclass
class _CallSite:
    held: tuple[str, ...]
    callee: str            # scan key of the resolved callee
    line: int


@dataclass
class _Write:
    attr: str
    held: tuple[str, ...]
    line: int


@dataclass
class _Scan:
    """Per-function facts gathered by one AST pass."""

    key: str               # "rel::qualname"
    info: FunctionInfo
    direct: set[str] = field(default_factory=set)
    calls: list[_CallSite] = field(default_factory=list)
    #: (outer, inner, line): *inner* acquired while *outer* held.
    nested: list[tuple[str, str, int]] = field(default_factory=list)
    #: non-reentrant lock re-entered directly.
    reentries: list[tuple[str, int]] = field(default_factory=list)
    writes: list[_Write] = field(default_factory=list)


class _Analyzer:
    def __init__(self, project: Project):
        self.project = project
        self.union = _LockUnion()
        self.lock_kinds: dict[str, str] = {}
        self.scans: dict[str, _Scan] = {}
        self._register_locks()

    # -- lock registry ------------------------------------------------------

    def _register_locks(self) -> None:
        for info in self.project.classes.values():
            for attr, kind in info.lock_attrs.items():
                self.lock_kinds[f"{info.name}.{attr}"] = kind
        for source_file in self.project.files:
            for name, kind in source_file.module_locks.items():
                self.lock_kinds[f"{source_file.rel}::{name}"] = kind

    def kind_of(self, lock: str) -> str:
        return self.lock_kinds.get(lock, "Lock")

    # -- type inference -----------------------------------------------------

    def _infer(self, expr: ast.expr, scan_locals: dict[str, str],
               cls: str | None) -> str | None:
        """Best-effort class name of *expr* (depth-limited by AST shape)."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return cls
            return scan_locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._infer(expr.value, scan_locals, cls)
            if base is None:
                return None
            info = self.project.classes.get(base)
            if info is None:
                return None
            return info.attr_types.get(expr.attr)
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted is not None:
                tail = dotted.split(".")[-1]
                if tail in self.project.classes and isinstance(expr.func, ast.Name):
                    return tail
            callee = self._resolve_call(expr, scan_locals, cls)
            if callee is not None:
                return callee.return_class
        return None

    def _resolve_call(self, call: ast.Call, scan_locals: dict[str, str],
                      cls: str | None, source_file: SourceFile | None = None
                      ) -> FunctionInfo | None:
        func = call.func
        if isinstance(func, ast.Name):
            if cls is not None:
                info = self.project.classes.get(cls)
            else:
                info = None
            if source_file is not None and func.id in source_file.functions:
                return source_file.functions[func.id]
            target = self.project.classes.get(func.id)
            if target is not None:
                return target.methods.get("__init__")
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and source_file is not None:
                module = self.project.resolve_module_alias(source_file, func.value.id)
                if module is not None:
                    return module.functions.get(func.attr)
            base = self._infer(func.value, scan_locals, cls)
            if base is not None:
                info = self.project.classes.get(base)
                if info is not None:
                    return info.methods.get(func.attr)
        return None

    def _resolve_lock(self, expr: ast.expr, scan_locals: dict[str, str],
                      cls: str | None, source_file: SourceFile) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id in source_file.module_locks:
                return self.union.find(f"{source_file.rel}::{expr.id}")
            return None
        if isinstance(expr, ast.Attribute):
            base = self._infer(expr.value, scan_locals, cls)
            if base is None:
                return None
            info = self.project.classes.get(base)
            if info is not None and expr.attr in info.lock_attrs:
                return self.union.find(f"{base}.{expr.attr}")
        return None

    # -- aliasing -----------------------------------------------------------

    def unify_shared_locks(self) -> None:
        """Unify a lock passed into another constructor with the attribute
        the callee's ``__init__`` stores it under."""
        for source_file in self.project.files:
            if source_file.tree is None:
                continue
            for cls_info in source_file.classes.values():
                for method in cls_info.methods.values():
                    self._unify_in_function(
                        method.node, cls_info.name, source_file)
            for function in source_file.functions.values():
                self._unify_in_function(function.node, None, source_file)

    def _unify_in_function(self, node: ast.FunctionDef, cls: str | None,
                           source_file: SourceFile) -> None:
        scan_locals = _param_types(node)
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            dotted = _dotted(call.func)
            if dotted is None:
                continue
            target = self.project.classes.get(dotted.split(".")[-1])
            if target is None:
                continue
            init = target.methods.get("__init__")
            if init is None:
                continue
            params = [a.arg for a in init.node.args.args if a.arg != "self"]
            bound: list[tuple[str, ast.expr]] = []
            for index, arg in enumerate(call.args):
                if index < len(params):
                    bound.append((params[index], arg))
            for keyword in call.keywords:
                if keyword.arg is not None:
                    bound.append((keyword.arg, keyword.value))
            for param, value in bound:
                lock = self._resolve_lock(value, scan_locals, cls, source_file)
                if lock is None:
                    continue
                stored = _param_stored_as(init.node, param)
                if stored is not None:
                    alias = f"{target.name}.{stored}"
                    self.lock_kinds.setdefault(alias, self.kind_of(lock))
                    self.union.union(alias, lock)

    # -- scanning -----------------------------------------------------------

    def scan_all(self) -> None:
        for source_file in self.project.files:
            if source_file.tree is None:
                continue
            for cls_info in source_file.classes.values():
                for method in cls_info.methods.values():
                    self._scan_function(method, cls_info.name, source_file)
            for function in source_file.functions.values():
                self._scan_function(function, None, source_file)

    def _scan_function(self, info: FunctionInfo, cls: str | None,
                       source_file: SourceFile) -> None:
        key = f"{source_file.rel}::{info.qualname}"
        scan = _Scan(key=key, info=info)
        self.scans[key] = scan
        scan_locals = _param_types(info.node)
        _collect_local_types(info.node, scan_locals, self, cls)
        self._walk_statements(
            info.node.body, (), scan, scan_locals, cls, source_file)

    def _walk_statements(self, statements, held: tuple[str, ...], scan: _Scan,
                         scan_locals, cls, source_file) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # a closure runs at an unknown time: scan its body with no
                # held locks, and do not fold its acquires into ours
                inner = _Scan(
                    key=f"{scan.key}.{statement.name}", info=scan.info)
                self.scans[inner.key] = inner
                inner_locals = dict(scan_locals)
                inner_locals.update(_param_types(statement))
                self._walk_statements(
                    statement.body, (), inner, inner_locals, cls, source_file)
                continue
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                acquired = list(held)
                for item in statement.items:
                    self._walk_expression(
                        item.context_expr, tuple(acquired), scan,
                        scan_locals, cls, source_file)
                    lock = self._resolve_lock(
                        item.context_expr, scan_locals, cls, source_file)
                    if lock is not None:
                        line = item.context_expr.lineno
                        scan.direct.add(lock)
                        for outer in acquired:
                            if outer == lock:
                                if self.kind_of(lock) == "Lock":
                                    scan.reentries.append((lock, line))
                            else:
                                scan.nested.append((outer, lock, line))
                        acquired.append(lock)
                self._walk_statements(
                    statement.body, tuple(acquired), scan, scan_locals,
                    cls, source_file)
                continue
            if isinstance(statement, ast.If):
                self._walk_expression(statement.test, held, scan, scan_locals,
                                      cls, source_file)
                self._walk_statements(statement.body, held, scan, scan_locals,
                                      cls, source_file)
                self._walk_statements(statement.orelse, held, scan,
                                      scan_locals, cls, source_file)
                continue
            if isinstance(statement, (ast.For, ast.AsyncFor)):
                self._walk_expression(statement.iter, held, scan, scan_locals,
                                      cls, source_file)
                self._record_writes(statement.target, held, scan, cls)
                self._walk_statements(statement.body, held, scan, scan_locals,
                                      cls, source_file)
                self._walk_statements(statement.orelse, held, scan,
                                      scan_locals, cls, source_file)
                continue
            if isinstance(statement, ast.While):
                self._walk_expression(statement.test, held, scan, scan_locals,
                                      cls, source_file)
                self._walk_statements(statement.body, held, scan, scan_locals,
                                      cls, source_file)
                self._walk_statements(statement.orelse, held, scan,
                                      scan_locals, cls, source_file)
                continue
            if isinstance(statement, ast.Try):
                for block in (statement.body, statement.orelse,
                              statement.finalbody):
                    self._walk_statements(block, held, scan, scan_locals,
                                          cls, source_file)
                for handler in statement.handlers:
                    self._walk_statements(handler.body, held, scan,
                                          scan_locals, cls, source_file)
                continue
            if isinstance(statement, ast.ClassDef):
                continue
            if isinstance(statement, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    statement.targets if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                for target in targets:
                    self._record_writes(target, held, scan, cls)
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self._walk_expression(child, held, scan, scan_locals,
                                          cls, source_file)

    def _record_writes(self, target: ast.expr, held: tuple[str, ...],
                       scan: _Scan, cls: str | None) -> None:
        if cls is None:
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_writes(element, held, scan, cls)
            return
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            scan.writes.append(_Write(
                attr=node.attr, held=held, line=target.lineno))

    def _walk_expression(self, expr: ast.expr, held: tuple[str, ...],
                         scan: _Scan, scan_locals, cls, source_file) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda,)):
                continue
            if isinstance(node, ast.Call):
                callee = self._resolve_call(node, scan_locals, cls, source_file)
                if callee is not None:
                    key = f"{callee.file.rel}::{callee.qualname}"
                    scan.calls.append(_CallSite(
                        held=held, callee=key, line=node.lineno))

    # -- graph --------------------------------------------------------------

    def may_acquire(self) -> dict[str, set[str]]:
        """Transitive may-acquire set per scanned function (fixpoint)."""
        acquired = {
            key: {self.union.find(lock) for lock in scan.direct}
            for key, scan in self.scans.items()
        }
        changed = True
        while changed:
            changed = False
            for key, scan in self.scans.items():
                bucket = acquired[key]
                before = len(bucket)
                for call in scan.calls:
                    bucket |= acquired.get(call.callee, set())
                if len(bucket) != before:
                    changed = True
        return acquired

    def edges(self, acquired) -> dict[tuple[str, str], tuple[str, int, str]]:
        """Ordered lock pairs with one witness each."""
        found: dict[tuple[str, str], tuple[str, int, str]] = {}
        for scan in self.scans.values():
            rel = scan.info.file.rel
            for outer, inner, line in scan.nested:
                pair = (self.union.find(outer), self.union.find(inner))
                found.setdefault(
                    pair, (rel, line,
                           f"{scan.info.qualname} acquires {pair[1]} while "
                           f"holding {pair[0]}"))
            for call in scan.calls:
                targets = acquired.get(call.callee, set())
                callee_name = call.callee.split("::")[-1]
                for outer in call.held:
                    outer_root = self.union.find(outer)
                    for inner in targets:
                        if inner == outer_root:
                            continue
                        found.setdefault(
                            (outer_root, inner),
                            (rel, call.line,
                             f"{scan.info.qualname} calls {callee_name} "
                             f"(may acquire {inner}) while holding "
                             f"{outer_root}"))
        return found

    def transitive_reentries(self, acquired):
        """A non-reentrant lock held across a call that may re-acquire it."""
        hits = []
        for scan in self.scans.values():
            for call in scan.calls:
                targets = acquired.get(call.callee, set())
                for outer in call.held:
                    root = self.union.find(outer)
                    if root in targets and self.kind_of(root) == "Lock":
                        hits.append((scan, call, root))
        return hits


def _param_types(node: ast.FunctionDef) -> dict[str, str]:
    types: dict[str, str] = {}
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        name = annotation_class_name(arg.annotation)
        if name is not None:
            types[arg.arg] = name
    return types


def _collect_local_types(node: ast.FunctionDef, scan_locals: dict[str, str],
                         analyzer: _Analyzer, cls: str | None) -> None:
    """``x = KnownClass(...)`` / ``x = self.attr`` local type seeds."""
    for statement in ast.walk(node):
        if not isinstance(statement, ast.Assign):
            continue
        if len(statement.targets) != 1:
            continue
        target = statement.targets[0]
        if not isinstance(target, ast.Name):
            continue
        inferred = analyzer._infer(statement.value, scan_locals, cls)
        if inferred is not None:
            scan_locals.setdefault(target.id, inferred)


def _param_stored_as(init: ast.FunctionDef, param: str) -> str | None:
    """The ``self.<attr>`` a parameter is stored under in ``__init__``."""
    for statement in ast.walk(init):
        value = None
        targets = []
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        if not (isinstance(value, ast.Name) and value.id == param):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return target.attr
    return None


def _build(project: Project) -> tuple[_Analyzer, dict[str, set[str]]]:
    analyzer = _Analyzer(project)
    analyzer.unify_shared_locks()
    analyzer.scan_all()
    return analyzer, analyzer.may_acquire()


def lock_graph(project: Project) -> dict[tuple[str, str], tuple[str, int, str]]:
    """The may-acquire ordering edges of *project*.

    Maps ``(outer_lock, inner_lock)`` to one witness ``(path, line,
    note)``.  Public so tooling and the self-check tests can assert the
    graph is non-vacuous without reaching into analyzer internals.
    """
    analyzer, acquired = _build(project)
    return analyzer.edges(acquired)


# ---------------------------------------------------------------------------
# C001 — lock-order inversions
# ---------------------------------------------------------------------------

def _cycles(edges: dict[tuple[str, str], tuple]) -> list[list[str]]:
    graph: dict[str, set[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    # Tarjan SCC; every SCC with more than one node (self-edges are
    # handled separately) is a lock-order inversion.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[list[str]] = []

    def strongconnect(node: str) -> None:
        work = [(node, iter(sorted(graph[node])))]
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = low[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    low[current] = min(low[current], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return components


def check_c001(project: Project, rule: Rule) -> list[Finding]:
    analyzer, acquired = _build(project)
    edges = analyzer.edges(acquired)
    findings = []
    for component in _cycles(edges):
        members = set(component)
        witnesses = sorted(
            f"{path}:{line} ({note})"
            for (a, b), (path, line, note) in edges.items()
            if a in members and b in members
        )
        path, line, _ = min(
            (edges[(a, b)] for (a, b) in edges
             if a in members and b in members),
            key=lambda item: (item[0], item[1]),
        )
        findings.append(Finding(
            rule=rule.id, severity=rule.severity,
            path=path, line=line,
            message=(
                "lock-order inversion between "
                + " and ".join(component)
                + ": these locks are acquired in both orders, so two "
                "threads can deadlock — witnesses: "
                + "; ".join(witnesses)
            ),
        ))
    for scan, call, lock in analyzer.transitive_reentries(acquired):
        callee_name = call.callee.split("::")[-1]
        findings.append(Finding(
            rule=rule.id, severity=rule.severity,
            path=scan.info.file.rel, line=call.line,
            message=(
                f"{scan.info.qualname} holds non-reentrant lock {lock} "
                f"while calling {callee_name}, which may acquire it again "
                "— self-deadlock"
            ),
        ))
    for scan in analyzer.scans.values():
        for lock, line in scan.reentries:
            findings.append(Finding(
                rule=rule.id, severity=rule.severity,
                path=scan.info.file.rel, line=line,
                message=(
                    f"{scan.info.qualname} re-enters non-reentrant lock "
                    f"{lock} it already holds — self-deadlock"
                ),
            ))
    return findings


# ---------------------------------------------------------------------------
# C002 — writes to lock-guarded attributes from unguarded code
# ---------------------------------------------------------------------------

def check_c002(project: Project, rule: Rule) -> list[Finding]:
    analyzer, acquired = _build(project)
    findings = []
    for cls_name, cls_info in sorted(project.classes.items()):
        if not cls_info.lock_attrs:
            continue
        own_locks = {
            analyzer.union.find(f"{cls_name}.{attr}")
            for attr in cls_info.lock_attrs
        }
        method_scans = {
            name: analyzer.scans.get(
                f"{cls_info.file.rel}::{cls_name}.{name}")
            for name in cls_info.methods
        }
        # 1. guarded attributes: written at least once with an own lock held
        guards: dict[str, set[str]] = {}
        for name, scan in method_scans.items():
            if scan is None or name in _WRITE_EXEMPT_METHODS:
                continue
            for write in scan.writes:
                held_own = {
                    analyzer.union.find(lock) for lock in write.held
                } & own_locks
                if held_own and write.attr not in cls_info.lock_attrs:
                    guards.setdefault(write.attr, set()).update(held_own)
        if not guards:
            continue
        # 2. "(lock held)" helpers: every resolved intra-project call site
        #    of an underscore-method holds one of the class's locks
        #    (directly, or via another such helper) — fixpoint.
        call_sites: dict[str, list[tuple[_Scan, _CallSite]]] = {}
        for scan in analyzer.scans.values():
            for call in scan.calls:
                call_sites.setdefault(call.callee, []).append((scan, call))
        lock_held_by_caller: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in cls_info.methods:
                if not name.startswith("_") or name in lock_held_by_caller:
                    continue
                if name in _WRITE_EXEMPT_METHODS:
                    continue
                key = f"{cls_info.file.rel}::{cls_name}.{name}"
                sites = call_sites.get(key, [])
                if not sites:
                    continue
                def _site_holds(site: tuple[_Scan, _CallSite]) -> bool:
                    caller_scan, call = site
                    if {analyzer.union.find(lock) for lock in call.held} & own_locks:
                        return True
                    caller_name = caller_scan.key.split("::")[-1]
                    return (
                        caller_name.startswith(f"{cls_name}.")
                        and caller_name.split(".")[-1] in lock_held_by_caller
                    )
                if all(_site_holds(site) for site in sites):
                    lock_held_by_caller.add(name)
                    changed = True
        # 3. violations
        for name, scan in sorted(method_scans.items()):
            if scan is None or name in _WRITE_EXEMPT_METHODS:
                continue
            if name in lock_held_by_caller:
                continue
            for write in scan.writes:
                if write.attr not in guards:
                    continue
                held_roots = {analyzer.union.find(lock) for lock in write.held}
                if held_roots & guards[write.attr]:
                    continue
                guard_names = ", ".join(sorted(guards[write.attr]))
                findings.append(Finding(
                    rule=rule.id, severity=rule.severity,
                    path=cls_info.file.rel, line=write.line,
                    message=(
                        f"{cls_name}.{name} writes self.{write.attr} "
                        f"without holding {guard_names}, but other methods "
                        "only write it under that lock — unsynchronized "
                        "write to a guarded attribute"
                    ),
                ))
    return findings


RULES = [
    Rule(
        id="C001",
        severity=SEVERITY_ERROR,
        summary="no lock-order inversions across the threaded subsystems",
        rationale=(
            "The service, cache, telemetry, and executor layers each hold "
            "their own lock; deadlock needs only two of them taken in "
            "opposite orders on two threads. The analyzer builds the "
            "may-acquire graph from `with self._lock:` regions (calls "
            "lexically after a with-block are outside it — the "
            "copy-then-call-hooks idiom reads as safe) and flags any "
            "cycle, plus non-reentrant Lock re-acquisition."
        ),
        bad_example=(
            "class A:\n"
            "    def m(self):\n"
            "        with self._la:\n"
            "            self.b.n()     # B.n takes B._lb\n"
            "class B:\n"
            "    def p(self):\n"
            "        with self._lb:\n"
            "            self.a.q()     # A.q takes A._la -> cycle\n"
        ),
        good_example=(
            "    def m(self):\n"
            "        with self._la:\n"
            "            payload = self._snapshot()\n"
            "        self.b.n(payload)  # call moved outside the region\n"
        ),
        checker=check_c001,
    ),
    Rule(
        id="C002",
        severity=SEVERITY_ERROR,
        summary="lock-guarded attributes are never written unguarded",
        rationale=(
            "If one method writes an attribute under the class's lock, "
            "every write must hold it — a single unguarded store races "
            "with readers that trust the lock. __init__/__setstate__ are "
            "exempt (no sharing yet), and so are underscore-helpers whose "
            "every call site provably holds the lock (the documented "
            "\"(lock held)\" pattern in the service daemon)."
        ),
        bad_example=(
            "    def run(self):\n"
            "        with self._guard:\n"
            "            self._broken = False\n"
            "    def _dispatch(self):\n"
            "        self._broken = True    # no lock -> C002\n"
        ),
        good_example=(
            "    def _dispatch(self):\n"
            "        with self._guard:\n"
            "            self._broken = True\n"
        ),
        checker=check_c002,
    ),
]
