"""Exact density-matrix simulation of noisy circuits.

The Monte-Carlo trajectories in :mod:`repro.simulator.noise` *sample* the
depolarizing channel; this module evolves the channel *exactly*:

    ``ρ -> (1 - p) UρU† + p/(4^k - 1) Σ_{P != I} P UρU† P``

over the ``k`` qubits each gate touches.  Exponentially more memory
(``4^n`` amplitudes) but zero statistical error — the reference the
trajectory sampler is validated against in the tests, and a variance-free
engine for small-system figures.
"""

from __future__ import annotations

from itertools import product as cartesian_product

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.paulis.strings import PauliString
from repro.paulis.terms import PauliSum
from repro.simulator.expectation import apply_pauli_string
from repro.simulator.noise import NoiseModel
from repro.simulator.statevector import apply_gate


def density_from_state(state: np.ndarray) -> np.ndarray:
    """``|ψ><ψ|``."""
    return np.outer(state, state.conj())


def _apply_unitary_gate(rho: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """``ρ -> U ρ U†`` by applying U to columns and U* to rows."""
    # Columns: treat each column as a state vector.
    transformed = np.stack(
        [apply_gate(rho[:, c], gate, num_qubits) for c in range(rho.shape[1])],
        axis=1,
    )
    # Rows: (U ρ U†) = (U (U ρ†)†)† given hermiticity bookkeeping; operate on
    # conjugated rows instead to avoid building dense unitaries.
    transformed = np.stack(
        [
            apply_gate(transformed[r, :].conj(), gate, num_qubits).conj()
            for r in range(transformed.shape[0])
        ],
        axis=0,
    )
    return transformed


def _error_paulis(qubits: tuple[int, ...], num_qubits: int) -> list[PauliString]:
    """All non-identity Pauli strings supported on ``qubits``."""
    strings = []
    for labels in cartesian_product("IXYZ", repeat=len(qubits)):
        if all(label == "I" for label in labels):
            continue
        operators = {
            qubit: label for qubit, label in zip(qubits, labels) if label != "I"
        }
        strings.append(PauliString.from_operators(num_qubits, operators))
    return strings


def _apply_depolarizing(
    rho: np.ndarray, qubits: tuple[int, ...], rate: float, num_qubits: int
) -> np.ndarray:
    if rate <= 0.0:
        return rho
    errors = _error_paulis(qubits, num_qubits)
    mixed = np.zeros_like(rho)
    for error in errors:
        # P ρ P†: apply P to columns, then P† (=P up to phase) to rows.
        step = np.stack(
            [apply_pauli_string(rho[:, c], error) for c in range(rho.shape[1])],
            axis=1,
        )
        step = np.stack(
            [
                apply_pauli_string(step[r, :].conj(), error).conj()
                for r in range(step.shape[0])
            ],
            axis=0,
        )
        mixed += step
    return (1.0 - rate) * rho + (rate / len(errors)) * mixed


def run_density_circuit(
    circuit: QuantumCircuit,
    initial_state: np.ndarray,
    noise: NoiseModel | None = None,
) -> np.ndarray:
    """Exact noisy evolution: final density matrix of ``circuit``."""
    noise = noise or NoiseModel()
    num_qubits = circuit.num_qubits
    rho = density_from_state(initial_state.astype(complex))
    for gate in circuit:
        rho = _apply_unitary_gate(rho, gate, num_qubits)
        rate = noise.two_qubit_error if gate.is_two_qubit else noise.single_qubit_error
        rho = _apply_depolarizing(rho, gate.qubits, rate, num_qubits)
    return rho


def density_expectation(rho: np.ndarray, operator: PauliSum) -> float:
    """``Tr(ρ H)`` for a hermitian :class:`PauliSum`.

    Uses the closed-form matrix elements ``P_{r^x, r} = i^{#Y} (-1)^{|r&z|}``:
    ``Tr(ρP) = Σ_r ρ[r, r^x] · phase_r`` — one strided read per term.
    """
    dimension = rho.shape[0]
    indices = np.arange(dimension)
    total = 0j
    for string, coefficient in operator.items():
        y_count = (string.x_mask & string.z_mask).bit_count()
        parity = np.zeros(dimension, dtype=np.int64)
        bit = 0
        z_mask = string.z_mask
        while z_mask >> bit:
            if (z_mask >> bit) & 1:
                parity ^= (indices >> bit) & 1
            bit += 1
        phases = (1j ** (y_count % 4)) * (1.0 - 2.0 * parity)
        total += coefficient * np.sum(rho[indices, indices ^ string.x_mask] * phases)
    return float(total.real)
