"""Dense statevector simulation.

Basis convention: computational index bit ``i`` is qubit ``i``, so qubit 0
is the least-significant bit — matching
:func:`repro.paulis.matrices.pauli_string_matrix`.  Gates are applied by
reshaping the amplitude vector so the acted-on qubit becomes one tensor
axis; comfortably fast up to ~14 qubits, far beyond the paper's 8-qubit
experiments.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

_SQRT_HALF = 1.0 / math.sqrt(2.0)

_SINGLE_QUBIT_MATRICES = {
    "H": np.array([[_SQRT_HALF, _SQRT_HALF], [_SQRT_HALF, -_SQRT_HALF]], dtype=complex),
    "S": np.array([[1.0, 0.0], [0.0, 1.0j]], dtype=complex),
    "SDG": np.array([[1.0, 0.0], [0.0, -1.0j]], dtype=complex),
    "X": np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
    "Y": np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex),
    "Z": np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex),
}


def zero_state(num_qubits: int) -> np.ndarray:
    """The ``|0...0>`` state."""
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def basis_state(num_qubits: int, index: int) -> np.ndarray:
    """The computational basis state ``|index>``."""
    state = np.zeros(2**num_qubits, dtype=complex)
    state[index] = 1.0
    return state


def gate_matrix(gate: Gate) -> np.ndarray:
    """The local unitary of a gate (2x2, or 4x4 for CNOT)."""
    if gate.name == "RZ":
        half = gate.parameter / 2.0
        return np.array(
            [[np.exp(-1j * half), 0.0], [0.0, np.exp(1j * half)]], dtype=complex
        )
    if gate.name == "CNOT":
        return np.array(
            [
                [1, 0, 0, 0],
                [0, 1, 0, 0],
                [0, 0, 0, 1],
                [0, 0, 1, 0],
            ],
            dtype=complex,
        )
    return _SINGLE_QUBIT_MATRICES[gate.name]


def apply_single_qubit(state: np.ndarray, matrix: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Apply a 2x2 unitary on ``qubit``."""
    reshaped = state.reshape(2 ** (num_qubits - qubit - 1), 2, 2**qubit)
    return np.einsum("ab,ibj->iaj", matrix, reshaped).reshape(-1)


def apply_cnot(state: np.ndarray, control: int, target: int, num_qubits: int) -> np.ndarray:
    """Apply CNOT by swapping target amplitudes where the control bit is 1."""
    indices = np.arange(2**num_qubits)
    control_on = (indices >> control) & 1 == 1
    flipped = indices ^ (1 << target)
    result = state.copy()
    result[indices[control_on]] = state[flipped[control_on]]
    return result


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Dispatch one gate application (returns a new array)."""
    if gate.name == "CNOT":
        return apply_cnot(state, gate.qubits[0], gate.qubits[1], num_qubits)
    return apply_single_qubit(state, gate_matrix(gate), gate.qubits[0], num_qubits)


def run_circuit(circuit: QuantumCircuit, initial_state: np.ndarray | None = None) -> np.ndarray:
    """Noiseless execution: final statevector of ``circuit``."""
    state = zero_state(circuit.num_qubits) if initial_state is None else initial_state.astype(complex)
    if state.shape != (2**circuit.num_qubits,):
        raise ValueError("initial state dimension does not match the circuit")
    for gate in circuit:
        state = apply_gate(state, gate, circuit.num_qubits)
    return state


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary of the whole circuit (tests / small circuits only)."""
    dimension = 2**circuit.num_qubits
    columns = []
    for basis_index in range(dimension):
        columns.append(run_circuit(circuit, basis_state(circuit.num_qubits, basis_index)))
    return np.stack(columns, axis=1)
