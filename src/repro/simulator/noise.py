"""Monte-Carlo Pauli-noise simulation.

The substitute for Qiskit Aer (and, with :func:`ionq_aria1_noise`, for the
IonQ Aria-1 device of Figure 10): after every gate a depolarizing error
fires with the gate-class probability and applies a uniformly random
non-identity Pauli on the touched qubits; readout error is a classical
bit-flip channel applied to measured samples.  Each trajectory is a pure
state, so observable statistics follow from averaging trajectories —
exactly the standard quantum-trajectory unravelling of the depolarizing
channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.paulis.strings import PauliString
from repro.paulis.terms import PauliSum
from repro.simulator.expectation import apply_pauli_string, expectation_pauli_sum
from repro.simulator.statevector import apply_gate

_SINGLE_PAULIS = ("X", "Y", "Z")


@dataclass(frozen=True)
class NoiseModel:
    """Gate-class error rates.

    Attributes:
        single_qubit_error: depolarizing probability after 1q gates.
        two_qubit_error: depolarizing probability after 2q gates.
        readout_error: classical bit-flip probability per measured qubit.
    """

    single_qubit_error: float = 0.0
    two_qubit_error: float = 0.0
    readout_error: float = 0.0

    def __post_init__(self):
        for rate in (self.single_qubit_error, self.two_qubit_error, self.readout_error):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("error rates must lie in [0, 1]")

    @property
    def is_noiseless(self) -> bool:
        return (
            self.single_qubit_error == 0.0
            and self.two_qubit_error == 0.0
            and self.readout_error == 0.0
        )


def ionq_aria1_noise() -> NoiseModel:
    """The published Aria-1 fidelities used by the paper's Section 5.1:
    99.99 % 1q, 98.91 % 2q, 98.82 % readout."""
    return NoiseModel(
        single_qubit_error=1.0 - 0.9999,
        two_qubit_error=1.0 - 0.9891,
        readout_error=1.0 - 0.9882,
    )


def _random_error_string(
    num_qubits: int, qubits: tuple[int, ...], rng: np.random.Generator
) -> PauliString:
    """A uniformly random non-identity Pauli on the given qubits."""
    while True:
        operators = {
            qubit: rng.choice(("I",) + _SINGLE_PAULIS) for qubit in qubits
        }
        if any(operator != "I" for operator in operators.values()):
            return PauliString.from_operators(
                num_qubits, {q: o for q, o in operators.items() if o != "I"}
            )


def run_noisy_trajectory(
    circuit: QuantumCircuit,
    initial_state: np.ndarray,
    noise: NoiseModel,
    rng: np.random.Generator,
) -> np.ndarray:
    """One Monte-Carlo trajectory: gate errors sampled per gate."""
    state = initial_state.astype(complex)
    num_qubits = circuit.num_qubits
    for gate in circuit:
        state = apply_gate(state, gate, num_qubits)
        rate = noise.two_qubit_error if gate.is_two_qubit else noise.single_qubit_error
        if rate > 0.0 and rng.random() < rate:
            error = _random_error_string(num_qubits, gate.qubits, rng)
            state = apply_pauli_string(state, error)
    return state


@dataclass
class EnergyStatistics:
    """Sampled energy observable: per-trajectory energies and summary."""

    samples: np.ndarray

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples))


def simulate_noisy_energy(
    circuit: QuantumCircuit,
    observable: PauliSum,
    initial_state: np.ndarray,
    noise: NoiseModel,
    shots: int = 200,
    seed: int = 1234,
) -> EnergyStatistics:
    """Estimate the post-circuit energy under noise.

    Each shot draws one noisy trajectory and evaluates the exact energy of
    the resulting pure state; the spread over shots is the measurement
    standard deviation reported in Figures 8-10.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    rng = np.random.default_rng(seed)
    energies = np.empty(shots)
    for shot in range(shots):
        state = run_noisy_trajectory(circuit, initial_state, noise, rng)
        energies[shot] = expectation_pauli_sum(state, observable)
    return EnergyStatistics(samples=energies)


def sample_measurements(
    state: np.ndarray,
    shots: int,
    readout_error: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Computational-basis samples with classical readout bit flips."""
    probabilities = np.abs(state) ** 2
    probabilities = probabilities / probabilities.sum()
    num_qubits = int(np.log2(len(state)))
    outcomes = rng.choice(len(state), size=shots, p=probabilities)
    if readout_error > 0.0:
        flips = rng.random((shots, num_qubits)) < readout_error
        flip_masks = np.zeros(shots, dtype=np.int64)
        for qubit in range(num_qubits):
            flip_masks |= flips[:, qubit].astype(np.int64) << qubit
        outcomes = outcomes ^ flip_masks
    return outcomes
