"""Shot-based energy estimation with measurement grouping.

The trajectory simulator in :mod:`repro.simulator.noise` evaluates exact
expectations per noisy trajectory; real devices (and the paper's IonQ
runs) instead *measure*: rotate to a product basis, sample bitstrings, and
average eigenvalue products.  This module implements that protocol —

1. partition the Hamiltonian's Pauli strings into qubit-wise commuting
   groups (greedy first-fit, the standard heuristic);
2. per group, apply the shared basis rotation and sample the computational
   basis (with optional readout error);
3. estimate each string's expectation from the sampled bits.

The resulting energies carry genuine shot noise on top of gate noise,
matching the spread visible in the paper's Figures 8-10.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.gates import Gate
from repro.paulis.strings import PauliString
from repro.paulis.terms import PauliSum
from repro.simulator.statevector import apply_gate


def qubit_wise_commuting(left: PauliString, right: PauliString) -> bool:
    """True when the strings commute *qubit by qubit* (same or I at each
    position) — the condition for sharing one measurement basis."""
    for qubit in range(left.num_qubits):
        a = left.operator(qubit)
        b = right.operator(qubit)
        if a != "I" and b != "I" and a != b:
            return False
    return True


def group_qubit_wise_commuting(operator: PauliSum) -> list[list[PauliString]]:
    """Greedy first-fit partition into qubit-wise commuting groups.

    Deterministic: strings are visited in sorted-label order, so a given
    Hamiltonian always produces the same grouping.
    """
    groups: list[list[PauliString]] = []
    for string, _ in operator.sorted_terms():
        if string.is_identity:
            continue
        for group in groups:
            if all(qubit_wise_commuting(string, member) for member in group):
                group.append(string)
                break
        else:
            groups.append([string])
    return groups


def _group_basis(group: list[PauliString], num_qubits: int) -> dict[int, str]:
    """The measurement basis per qubit implied by a qubit-wise commuting group."""
    basis: dict[int, str] = {}
    for string in group:
        for qubit in string.support:
            basis[qubit] = string.operator(qubit)
    return basis


def _basis_rotation_gates(basis: dict[int, str]) -> list[Gate]:
    """Gates rotating each measured qubit's operator into ``Z``."""
    gates: list[Gate] = []
    for qubit, operator in sorted(basis.items()):
        if operator == "X":
            gates.append(Gate("H", (qubit,)))
        elif operator == "Y":
            gates.append(Gate("SDG", (qubit,)))
            gates.append(Gate("H", (qubit,)))
    return gates


def measure_energy(
    state: np.ndarray,
    operator: PauliSum,
    shots_per_group: int,
    rng: np.random.Generator,
    readout_error: float = 0.0,
) -> float:
    """One shot-based energy estimate of ``<state|operator|state>``.

    Identity terms contribute their coefficients exactly (they need no
    measurement); every other term is estimated from ``shots_per_group``
    sampled bitstrings of its group's basis.
    """
    num_qubits = operator.num_qubits
    identity = PauliString.identity(num_qubits)
    energy = operator.coefficient(identity).real

    for group in group_qubit_wise_commuting(operator):
        basis = _group_basis(group, num_qubits)
        rotated = state
        for gate in _basis_rotation_gates(basis):
            rotated = apply_gate(rotated, gate, num_qubits)
        probabilities = np.abs(rotated) ** 2
        probabilities = probabilities / probabilities.sum()
        outcomes = rng.choice(len(rotated), size=shots_per_group, p=probabilities)
        if readout_error > 0.0:
            flips = rng.random((shots_per_group, num_qubits)) < readout_error
            masks = np.zeros(shots_per_group, dtype=np.int64)
            for qubit in range(num_qubits):
                masks |= flips[:, qubit].astype(np.int64) << qubit
            outcomes = outcomes ^ masks
        for string in group:
            mask = string.x_mask | string.z_mask
            parities = np.zeros(shots_per_group, dtype=np.int64)
            bit = 0
            while mask >> bit:
                if (mask >> bit) & 1:
                    parities ^= (outcomes >> bit) & 1
                bit += 1
            eigenvalues = 1.0 - 2.0 * parities
            energy += operator.coefficient(string).real * float(eigenvalues.mean())
    return energy


def measured_energy_statistics(
    state: np.ndarray,
    operator: PauliSum,
    repetitions: int,
    shots_per_group: int,
    seed: int = 7,
    readout_error: float = 0.0,
) -> tuple[float, float]:
    """Mean and standard deviation of repeated shot-based estimates."""
    rng = np.random.default_rng(seed)
    estimates = np.array(
        [
            measure_energy(state, operator, shots_per_group, rng, readout_error)
            for _ in range(repetitions)
        ]
    )
    return float(estimates.mean()), float(estimates.std())
