"""Pauli-operator actions and expectation values on statevectors.

Pauli strings act on basis states in closed form:
``P|i> = i^{#Y} (-1)^{|i & z_mask|} |i ^ x_mask>``,
so expectation values cost one vector permutation and one phase vector per
term — no dense matrices.
"""

from __future__ import annotations

import numpy as np

from repro.paulis.strings import PauliString
from repro.paulis.terms import PauliSum


def _parity_vector(num_qubits: int, mask: int) -> np.ndarray:
    """``(-1)^{|i & mask|}`` over all basis indices ``i``."""
    indices = np.arange(2**num_qubits, dtype=np.int64)
    parity = np.zeros(2**num_qubits, dtype=np.int64)
    bit = 0
    while mask >> bit:
        if (mask >> bit) & 1:
            parity ^= (indices >> bit) & 1
        bit += 1
    return 1.0 - 2.0 * parity


def apply_pauli_string(state: np.ndarray, string: PauliString) -> np.ndarray:
    """``P|ψ>`` via the closed-form basis action."""
    num_qubits = string.num_qubits
    if state.shape != (2**num_qubits,):
        raise ValueError("state dimension does not match the Pauli string")
    indices = np.arange(2**num_qubits, dtype=np.int64)
    y_count = (string.x_mask & string.z_mask).bit_count()
    phases = (1j ** (y_count % 4)) * _parity_vector(num_qubits, string.z_mask)
    result = np.empty_like(state)
    result[indices ^ string.x_mask] = phases * state
    return result


def expectation_pauli_string(state: np.ndarray, string: PauliString) -> complex:
    """``<ψ|P|ψ>``."""
    return complex(np.vdot(state, apply_pauli_string(state, string)))


def expectation_pauli_sum(state: np.ndarray, operator: PauliSum) -> float:
    """``<ψ|H|ψ>`` for a hermitian :class:`PauliSum` (real part returned)."""
    total = 0j
    for string, coefficient in operator.items():
        total += coefficient * expectation_pauli_string(state, string)
    return float(total.real)


def apply_pauli_sum(state: np.ndarray, operator: PauliSum) -> np.ndarray:
    """``H|ψ>``."""
    result = np.zeros_like(state)
    for string, coefficient in operator.items():
        result += coefficient * apply_pauli_string(state, string)
    return result
