"""Exact diagonalization of qubit Hamiltonians.

Supplies the theoretical eigenenergies (the black reference lines of
Figures 8/9) and the eigenstate initial states the noisy simulations
start from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.paulis.matrices import pauli_sum_matrix
from repro.paulis.terms import PauliSum


@dataclass(frozen=True)
class Spectrum:
    """Eigenvalues (ascending) and matching eigenvectors (columns)."""

    energies: np.ndarray
    states: np.ndarray

    def eigenstate(self, level: int) -> np.ndarray:
        """The ``level``-th excited state (0 = ground state)."""
        return self.states[:, level].copy()

    def energy(self, level: int) -> float:
        return float(self.energies[level])

    @property
    def ground_energy(self) -> float:
        return float(self.energies[0])


def diagonalize(operator: PauliSum) -> Spectrum:
    """Full dense eigendecomposition (use below ~12 qubits)."""
    if not operator.is_hermitian():
        raise ValueError("can only diagonalize hermitian operators")
    matrix = pauli_sum_matrix(operator)
    energies, states = np.linalg.eigh(matrix)
    return Spectrum(energies=energies, states=states)


def distinct_eigenlevels(spectrum: Spectrum, count: int, tolerance: float = 1e-9) -> list[int]:
    """Indices of the first ``count`` *distinct* energy levels.

    The paper's E0..E3 labels refer to distinct energies; degenerate
    eigenvalues collapse to one label.
    """
    levels: list[int] = []
    last_energy = None
    for index, energy in enumerate(spectrum.energies):
        if last_energy is None or energy - last_energy > tolerance:
            levels.append(index)
            last_energy = float(energy)
            if len(levels) == count:
                break
    return levels
