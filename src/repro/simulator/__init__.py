"""Simulation substrate: statevector engine, noise trajectories, exact spectra."""

from repro.simulator.density import (
    density_expectation,
    density_from_state,
    run_density_circuit,
)
from repro.simulator.exact import Spectrum, diagonalize, distinct_eigenlevels
from repro.simulator.measurement import (
    group_qubit_wise_commuting,
    measure_energy,
    measured_energy_statistics,
    qubit_wise_commuting,
)
from repro.simulator.expectation import (
    apply_pauli_string,
    apply_pauli_sum,
    expectation_pauli_string,
    expectation_pauli_sum,
)
from repro.simulator.noise import (
    EnergyStatistics,
    NoiseModel,
    ionq_aria1_noise,
    run_noisy_trajectory,
    sample_measurements,
    simulate_noisy_energy,
)
from repro.simulator.statevector import (
    apply_gate,
    basis_state,
    circuit_unitary,
    gate_matrix,
    run_circuit,
    zero_state,
)

__all__ = [
    "EnergyStatistics",
    "NoiseModel",
    "Spectrum",
    "apply_gate",
    "apply_pauli_string",
    "apply_pauli_sum",
    "basis_state",
    "circuit_unitary",
    "density_expectation",
    "density_from_state",
    "diagonalize",
    "distinct_eigenlevels",
    "expectation_pauli_string",
    "expectation_pauli_sum",
    "gate_matrix",
    "group_qubit_wise_commuting",
    "ionq_aria1_noise",
    "measure_energy",
    "measured_energy_statistics",
    "qubit_wise_commuting",
    "run_circuit",
    "run_density_circuit",
    "run_noisy_trajectory",
    "sample_measurements",
    "simulate_noisy_energy",
    "zero_state",
]
