"""Structured chaos engine: named fault points with deterministic triggers.

Production resilience claims are only as good as the failures they were
tested against, so the fault injection used by tests and operational
drills is a first-class subsystem rather than scattered ``if env:``
hacks.  Code paths that can fail in the field declare a **named fault
point** (:data:`FAULT_POINTS`) and call :func:`inject` at the moment the
real failure would strike; an armed point then raises (or kills the
process) with semantics chosen by the operator.

Arming is declarative, via environment variables (inherited by forked
worker processes) or :func:`configure` in tests::

    REPRO_CHAOS="cache.write=once"                # first write fails
    REPRO_CHAOS="solver.slice=after:3:kill"       # 4th+ SAT call kills the worker
    REPRO_CHAOS="cache.read=prob:0.25,http.handler=once"
    REPRO_CHAOS_SEED=7                            # seeds the prob: draws

Trigger grammar, per point (``point=trigger[:arg][:kill]``):

* ``once`` — only the first hit faults; later hits pass.
* ``always`` — every hit faults.
* ``after:N`` — the first N hits pass, every later hit faults (lets a
  drill make *partial* progress before the failure, e.g. checkpoint a
  few descent rungs and then die).
* ``prob:P`` — each hit faults with probability P, drawn from a
  deterministic per-(seed, point, hit-index) stream so a failing run
  replays exactly.

The ``:kill`` modifier turns the fault into ``os._exit(86)`` — a hard
process death, indistinguishable from SIGKILL to the parent — instead of
an exception.  That is the lever for supervised-retry drills: a killed
pool worker surfaces as ``BrokenProcessPool`` and exercises the
daemon's requeue path end to end.

Fault points whose consumers are expected to *degrade* rather than fail
(cache I/O, checkpoint writes) raise :class:`ChaosIOFault`, an
``OSError`` subclass, so the production error handling they claim to
have actually engages; everything else raises :class:`ChaosFault`.

The legacy ``REPRO_CHAOS_FAIL`` label-substring knob (PR 8's forensics
drill) is kept as a shim over the ``job.run`` point — see
:func:`legacy_job_fault`.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass

#: Structured arming spec, e.g. ``"cache.write=once,solver.slice=after:2:kill"``.
CHAOS_ENV = "REPRO_CHAOS"

#: Seed of the ``prob:`` trigger's deterministic draws (default 0).
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"

#: Legacy knob: when set and its value is a substring of a job's label,
#: the job's execution body fails before compiling (PR 8 semantics).
LEGACY_CHAOS_ENV = "REPRO_CHAOS_FAIL"

#: Every named fault point, at the layer where the real failure would hit:
#: cache entry reads/writes, descent checkpoint persistence, worker-pool
#: and portfolio process spawning, each SAT solve call, each HTTP request,
#: and the job execution body itself.
FAULT_POINTS = (
    "cache.read",
    "cache.write",
    "checkpoint.write",
    "worker.spawn",
    "solver.slice",
    "http.handler",
    "job.run",
)

#: Points whose callers handle ``OSError`` in production (best-effort
#: persistence); their faults must walk the same handler.
_IO_POINTS = frozenset({"cache.read", "cache.write", "checkpoint.write"})

#: Exit status of a ``:kill`` fault — distinctive in ``waitpid`` output.
KILL_EXIT_CODE = 86

_TRIGGERS = ("once", "always", "after", "prob")


class ChaosFault(RuntimeError):
    """An injected fault from an armed chaos point."""

    def __init__(self, message: str, point: str = ""):
        super().__init__(message)
        self.point = point


class ChaosIOFault(ChaosFault, OSError):
    """An injected I/O fault — also an ``OSError``, so best-effort
    persistence paths treat it exactly like a real disk failure."""


@dataclass(frozen=True)
class FaultRule:
    """Arming of one fault point: when its hits turn into faults."""

    point: str
    trigger: str = "once"
    after: int = 0
    probability: float = 0.0
    kill: bool = False

    def fires(self, hit: int, seed: int) -> bool:
        """Whether the ``hit``-th call (1-based) of this point faults."""
        if self.trigger == "once":
            return hit == 1
        if self.trigger == "always":
            return True
        if self.trigger == "after":
            return hit > self.after
        # prob: one draw per (seed, point, hit) — replayable, order-free.
        draw = random.Random(f"{seed}:{self.point}:{hit}").random()
        return draw < self.probability


def parse_rules(spec: str) -> dict[str, FaultRule]:
    """Parse a :data:`CHAOS_ENV` spec into per-point rules.

    Raises ``ValueError`` on unknown points or malformed triggers — a
    typoed drill must fail loudly, not silently inject nothing.
    """
    rules: dict[str, FaultRule] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        point, sep, trigger_spec = chunk.partition("=")
        point = point.strip()
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown chaos point {point!r}; expected one of {FAULT_POINTS}"
            )
        tokens = [t.strip() for t in trigger_spec.split(":")] if sep else ["once"]
        kill = False
        if tokens and tokens[-1] == "kill":
            kill = True
            tokens = tokens[:-1]
        trigger = tokens[0] if tokens and tokens[0] else "once"
        if trigger not in _TRIGGERS:
            raise ValueError(
                f"unknown chaos trigger {trigger!r} for point {point!r}; "
                f"expected one of {_TRIGGERS}"
            )
        after, probability = 0, 0.0
        if trigger == "after":
            if len(tokens) != 2:
                raise ValueError(f"chaos trigger 'after' needs a count: {chunk!r}")
            after = int(tokens[1])
        elif trigger == "prob":
            if len(tokens) != 2:
                raise ValueError(
                    f"chaos trigger 'prob' needs a probability: {chunk!r}"
                )
            probability = float(tokens[1])
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"chaos probability out of [0, 1]: {chunk!r}")
        elif len(tokens) != 1:
            raise ValueError(f"chaos trigger {trigger!r} takes no argument: {chunk!r}")
        rules[point] = FaultRule(
            point=point, trigger=trigger, after=after,
            probability=probability, kill=kill,
        )
    return rules


class ChaosEngine:
    """Per-process fault-injection state: rules plus hit/fault counters.

    Counters are process-local by design — a forked worker replays its
    own deterministic hit sequence from zero, so e.g.
    ``solver.slice=after:2:kill`` lets *each attempt* of a retried job
    advance two rungs before dying, which is exactly what a
    checkpoint-resume drill needs.
    """

    def __init__(self, rules: dict[str, FaultRule] | None = None, seed: int = 0):
        self.rules = dict(rules or {})
        self.seed = seed
        self.hits: dict[str, int] = {}
        self.faults: dict[str, int] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_env(cls, environ=None) -> "ChaosEngine":
        environ = os.environ if environ is None else environ
        spec = environ.get(CHAOS_ENV, "")
        try:
            seed = int(environ.get(CHAOS_SEED_ENV, "0"))
        except ValueError:
            seed = 0
        return cls(parse_rules(spec) if spec else {}, seed=seed)

    @property
    def active(self) -> bool:
        return bool(self.rules)

    def inject(self, point: str, telemetry=None, detail: str = "") -> None:
        """One pass through ``point``: raise/kill when its rule fires.

        No-op (a dict lookup) when the point is unarmed, so production
        paths can call this unconditionally.
        """
        rule = self.rules.get(point)
        if rule is None:
            return
        with self._lock:
            hit = self.hits.get(point, 0) + 1
            self.hits[point] = hit
            fired = rule.fires(hit, self.seed)
            if fired:
                self.faults[point] = self.faults.get(point, 0) + 1
        if not fired:
            return
        if telemetry is not None:
            telemetry.counter(
                "repro_chaos_faults_total", "chaos faults injected, by point"
            ).labels(point=point).inc()
        message = f"chaos fault injected: point {point} (hit {hit})"
        if detail:
            message += f" {detail}"
        if rule.kill:
            os._exit(KILL_EXIT_CODE)
        if point in _IO_POINTS:
            raise ChaosIOFault(message, point)
        raise ChaosFault(message, point)


_engine: ChaosEngine | None = None
_engine_lock = threading.Lock()


def engine() -> ChaosEngine:
    """The process-wide engine, lazily armed from the environment."""
    global _engine
    if _engine is None:
        with _engine_lock:
            if _engine is None:
                _engine = ChaosEngine.from_env()
    return _engine


def configure(rules_or_engine=None, seed: int = 0) -> ChaosEngine:
    """Install an explicit engine (test seam); returns it.

    Accepts a :class:`ChaosEngine`, a spec string, a rules dict, or
    ``None`` for an inert engine.
    """
    global _engine
    if isinstance(rules_or_engine, ChaosEngine):
        built = rules_or_engine
    elif isinstance(rules_or_engine, str):
        built = ChaosEngine(parse_rules(rules_or_engine), seed=seed)
    else:
        built = ChaosEngine(rules_or_engine, seed=seed)
    with _engine_lock:
        _engine = built
    return built


def reset() -> None:
    """Drop the cached engine; the next :func:`inject` re-reads the env.

    Tests call this after ``monkeypatch.setenv(CHAOS_ENV, ...)`` — and
    *before* forking worker pools, so the workers parse the new spec
    themselves instead of inheriting a stale parsed engine.
    """
    global _engine
    with _engine_lock:
        _engine = None


def inject(point: str, telemetry=None, detail: str = "") -> None:
    """Module-level convenience over :meth:`ChaosEngine.inject`."""
    engine().inject(point, telemetry=telemetry, detail=detail)


def legacy_job_fault(label: str | None, telemetry=None) -> None:
    """The PR 8 ``REPRO_CHAOS_FAIL`` shim, now riding the engine.

    When the legacy variable is set and is a substring of the job label,
    raises with the exact message shape the original hack produced (the
    forensics CI drill greps for it).
    """
    legacy = os.environ.get(LEGACY_CHAOS_ENV)
    if legacy and legacy in (label or ""):
        if telemetry is not None:
            telemetry.counter(
                "repro_chaos_faults_total", "chaos faults injected, by point"
            ).labels(point="job.run").inc()
        raise ChaosFault(
            f"chaos fault injected: label {label!r} matches "
            f"{LEGACY_CHAOS_ENV}={legacy!r}",
            point="job.run",
        )
