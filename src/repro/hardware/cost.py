"""Hardware-aware cost models: routed gate counts instead of raw weight.

Abstract Pauli weight is a device-independent proxy; what a machine
actually pays is two-qubit gates *after routing*.  This module scores
operators and encodings by that real cost:

* :class:`HardwareCostModel` compiles a :class:`~repro.paulis.terms.PauliSum`
  the same way the benchmarks do (Paulihedral-lite term ordering, Figure-3
  synthesis, peephole), but hardware-aware: evolution targets are chosen
  as the medoid of each string's support under the device metric, CNOT
  ladders are ordered nearest-first, the initial layout comes from
  :func:`~repro.hardware.routing.greedy_layout`, and the result is routed
  with SWAP insertion.  The score is the routed CNOT count and depth.
* :func:`connectivity_weights` distills a topology into per-qubit integer
  cost multipliers for the SAT objective: a qubit far from the others (in
  average hop count) makes every Pauli it hosts more expensive to route,
  so the connectivity-weighted descent
  (``FermihedralConfig.qubit_weights``) steers support onto the
  well-connected patch.  On an all-to-all device every qubit gets the
  same multiplier and the objective degenerates to plain Pauli weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.optimizer import optimize_circuit
from repro.circuits.pauli_evolution import pauli_evolution_circuit
from repro.circuits.scheduling import greedy_cancellation_order
from repro.encodings.base import MajoranaEncoding
from repro.hardware.routing import (
    RoutingResult,
    greedy_layout,
    interaction_weights,
    route_circuit,
)
from repro.hardware.topology import DeviceTopology, TopologyError
from repro.paulis.terms import PauliSum


@dataclass(frozen=True)
class HardwareCost:
    """Routed cost of one compiled operator on one device.

    ``two_qubit_count`` is the headline number: CNOTs after SWAP
    insertion, with each SWAP counted as its three-CNOT decomposition.
    The ``logical_*`` fields record the pre-routing circuit so the
    routing overhead is visible.
    """

    device: str
    num_physical_qubits: int
    two_qubit_count: int
    swap_count: int
    depth: int
    single_qubit_count: int
    logical_two_qubit_count: int
    logical_depth: int

    @property
    def routing_overhead(self) -> int:
        """Two-qubit gates added by the topology."""
        return self.two_qubit_count - self.logical_two_qubit_count

    def as_dict(self) -> dict:
        """Plain-data form (used by the result-schema serializer)."""
        return {
            "device": self.device,
            "num_physical_qubits": self.num_physical_qubits,
            "two_qubit_count": self.two_qubit_count,
            "swap_count": self.swap_count,
            "depth": self.depth,
            "single_qubit_count": self.single_qubit_count,
            "logical_two_qubit_count": self.logical_two_qubit_count,
            "logical_depth": self.logical_depth,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HardwareCost":
        return cls(
            device=data["device"],
            num_physical_qubits=data["num_physical_qubits"],
            two_qubit_count=data["two_qubit_count"],
            swap_count=data["swap_count"],
            depth=data["depth"],
            single_qubit_count=data["single_qubit_count"],
            logical_two_qubit_count=data["logical_two_qubit_count"],
            logical_depth=data["logical_depth"],
        )

    @property
    def sort_key(self) -> tuple[int, int, int]:
        """Comparison order: routed CNOTs, then depth, then single-qubit gates."""
        return (self.two_qubit_count, self.depth, self.single_qubit_count)


def connectivity_weights(
    topology: DeviceTopology,
    num_logical: int | None = None,
    scale: float = 2.0,
) -> tuple[int, ...]:
    """Per-qubit integer cost multipliers for the SAT objective.

    Logical qubit ``i`` (placed on physical qubit ``i``) gets
    ``1 + round(scale * (mean_distance_i - min_j mean_distance_j))`` —
    its *relative* remoteness among the logical qubits, so the
    best-connected qubit always costs 1.  Only relative differences steer
    the descent, and keeping the integers small matters: the weighted
    cardinality constraint repeats each indicator ``weight`` times, so
    inflated multipliers inflate the SAT instance for no extra signal.
    On an all-to-all graph every weight is exactly 1 and the objective
    *is* plain Pauli weight; on sparse graphs, peripheral qubits cost
    more than central ones, concentrating support where routing is cheap.
    """
    count = topology.num_qubits if num_logical is None else num_logical
    if count < 1:
        raise TopologyError("need at least one logical qubit")
    if count > topology.num_qubits:
        raise TopologyError(
            f"{count} logical qubits exceed the device's {topology.num_qubits}"
        )
    if count == 1:
        return (1,)
    mean_distances = [
        sum(topology.distance(i, j) for j in range(count) if j != i) / (count - 1)
        for i in range(count)
    ]
    floor = min(mean_distances)
    # round half-up (not banker's) so symmetric layouts stay symmetric
    return tuple(
        1 + int(scale * (mean - floor) + 0.5) for mean in mean_distances
    )


class HardwareCostModel:
    """Scores operators and encodings by routed two-qubit gate count.

    Args:
        topology: the target device.
        evolution_time: Trotter evolution time used when synthesizing
            (affects only rotation angles, never gate counts).
        optimize: run the peephole pass on the logical circuit before
            routing (matches the benchmark compilation pipeline).
    """

    def __init__(
        self,
        topology: DeviceTopology,
        evolution_time: float = 1.0,
        optimize: bool = True,
    ):
        self.topology = topology
        self.evolution_time = evolution_time
        self.optimize = optimize

    # -- synthesis --------------------------------------------------------

    def _evolution_block(
        self, string, angle: float, layout: Sequence[int]
    ) -> QuantumCircuit:
        """Figure-3 block with device-aware target and ladder order.

        The rotation target is the support medoid under the device metric
        (given the initial layout) and ladder controls enter nearest-first,
        so the non-restoring router drags far controls across already-
        shortened paths.
        """
        support = string.support
        distance = self.topology.distance

        def spread(candidate: int) -> int:
            return sum(
                distance(layout[candidate], layout[other]) for other in support
            )

        target = min(support, key=lambda q: (spread(q), -q))
        ladder = sorted(
            (q for q in support if q != target),
            key=lambda q: (distance(layout[q], layout[target]), q),
        )
        return pauli_evolution_circuit(string, angle, target=target, ladder=ladder)

    def logical_circuit(
        self, operator: PauliSum, layout: Sequence[int]
    ) -> QuantumCircuit:
        """Hardware-aware synthesis of the full operator (pre-routing)."""
        circuit = QuantumCircuit(operator.num_qubits)
        for string in greedy_cancellation_order(operator):
            angle = operator.coefficient(string).real * self.evolution_time
            circuit.extend(self._evolution_block(string, angle, layout).gates)
        if self.optimize:
            circuit = optimize_circuit(circuit)
        return circuit

    def routed_circuit(
        self,
        operator: PauliSum,
        layout: "Sequence[int] | None" = None,
    ) -> RoutingResult:
        """Synthesize and route an operator; the cost model's full pipeline.

        The layout defaults to the greedy interaction-aware placement
        computed from a first synthesis pass; pass one explicitly to pin a
        placement.
        """
        if operator.num_qubits > self.topology.num_qubits:
            raise TopologyError(
                f"operator acts on {operator.num_qubits} qubits, device "
                f"{self.topology.name!r} has {self.topology.num_qubits}"
            )
        if layout is None:
            # Bootstrap: synthesize once with the identity layout to read
            # off the interaction graph, then place greedily.
            probe = self.logical_circuit(operator, list(range(operator.num_qubits)))
            layout = greedy_layout(
                interaction_weights(probe), operator.num_qubits, self.topology
            )
        circuit = self.logical_circuit(operator, layout)
        return route_circuit(circuit, self.topology, initial_layout=layout)

    # -- scoring ----------------------------------------------------------

    def cost_of_operator(self, operator: PauliSum) -> HardwareCost:
        """Routed cost of one Pauli-sum evolution."""
        routed = self.routed_circuit(operator)
        return HardwareCost(
            device=self.topology.name,
            num_physical_qubits=self.topology.num_qubits,
            two_qubit_count=routed.two_qubit_count,
            swap_count=routed.swap_count,
            depth=routed.depth,
            single_qubit_count=routed.circuit.single_qubit_count,
            logical_two_qubit_count=routed.logical_two_qubit_count,
            logical_depth=routed.logical_depth,
        )

    def _operator_for(
        self, encoding: MajoranaEncoding, hamiltonian=None
    ) -> PauliSum:
        if hamiltonian is not None:
            return encoding.encode(hamiltonian).without_identity().hermitian_part()
        # Hamiltonian-independent proxy: one evolution block per Majorana
        # string (all real unit coefficients — hermitian by construction).
        return PauliSum(
            encoding.num_qubits, {string: 1.0 for string in encoding.strings}
        )

    def cost_of_encoding(
        self, encoding: MajoranaEncoding, hamiltonian=None
    ) -> HardwareCost:
        """Routed cost of an encoding.

        With a Hamiltonian: the cost of one Trotter step of its encoded
        image.  Without: the cost of evolving each Majorana string once —
        the Hamiltonian-independent analogue of summed weight.
        """
        return self.cost_of_operator(self._operator_for(encoding, hamiltonian))

    def best_encoding(
        self,
        candidates: Iterable[MajoranaEncoding],
        hamiltonian=None,
    ) -> tuple[MajoranaEncoding, HardwareCost]:
        """The candidate with the lowest routed cost (ties keep the
        earliest candidate, so callers can put a preferred encoding first)."""
        best: tuple[MajoranaEncoding, HardwareCost] | None = None
        for candidate in candidates:
            cost = self.cost_of_encoding(candidate, hamiltonian)
            if best is None or cost.sort_key < best[1].sort_key:
                best = (candidate, cost)
        if best is None:
            raise ValueError("best_encoding needs at least one candidate")
        return best
