"""Hardware-aware compilation: device topologies, routing, routed-cost models.

Fermihedral minimizes abstract Pauli weight; this subsystem grounds the
objective in a target device.  It provides:

* :mod:`repro.hardware.topology` — :class:`DeviceTopology` coupling graphs
  (linear, ring, grid, heavy-hex, all-to-all) with BFS distance metrics;
* :mod:`repro.hardware.devices` — a named registry (``ibmq-manila``,
  ``ibm-falcon-27``, ``ionq-aria-25``, ...) plus parametric specs such as
  ``grid-3x3``;
* :mod:`repro.hardware.routing` — greedy SWAP-insertion routing with
  interaction-aware initial layouts;
* :mod:`repro.hardware.cost` — :class:`HardwareCostModel` (routed CNOT
  count and depth of an encoding's compiled circuit) and
  :func:`connectivity_weights`, which feed the SAT layer's
  connectivity-weighted descent objective
  (``FermihedralConfig.qubit_weights``).

The compiler facade consumes all of it: ``FermihedralCompiler(device=...)``
or ``compile(..., device=...)`` switch the whole pipeline — objective,
candidate selection, cache fingerprints, reporting — to the routed-cost
view.
"""

from repro.hardware.cost import HardwareCost, HardwareCostModel, connectivity_weights
from repro.hardware.devices import (
    device_spec_help,
    get_device,
    list_devices,
    resolve_device,
)
from repro.hardware.routing import (
    RoutingResult,
    greedy_layout,
    interaction_weights,
    layout_for_circuit,
    route_circuit,
)
from repro.hardware.topology import (
    DeviceTopology,
    TopologyError,
    all_to_all_topology,
    grid_topology,
    heavy_hex_topology,
    linear_topology,
    ring_topology,
)

__all__ = [
    "DeviceTopology",
    "HardwareCost",
    "HardwareCostModel",
    "RoutingResult",
    "TopologyError",
    "all_to_all_topology",
    "connectivity_weights",
    "device_spec_help",
    "get_device",
    "greedy_layout",
    "grid_topology",
    "heavy_hex_topology",
    "interaction_weights",
    "layout_for_circuit",
    "linear_topology",
    "list_devices",
    "resolve_device",
    "ring_topology",
    "route_circuit",
]
