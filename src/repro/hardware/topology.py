"""Device coupling graphs with all-pairs shortest-path metrics.

Fermihedral's abstract objective counts Pauli weight, but on hardware the
cost of a weight-``w`` evolution block depends on *where* its support
qubits sit: a CNOT between qubits at coupling-graph distance ``d`` needs
``d - 1`` SWAPs of routing overhead.  :class:`DeviceTopology` is the
ground truth the routing and cost layers consult — an undirected,
connected coupling graph with precomputed BFS distances and deterministic
shortest paths.

Builders cover the layouts that dominate current machines:

* :func:`linear_topology` — a 1-D chain (early IBM devices, many QA
  testbeds);
* :func:`ring_topology` — a cycle;
* :func:`grid_topology` — a rows×cols square lattice (Google Sycamore
  style);
* :func:`heavy_hex_topology` — a hexagonal lattice with a qubit on every
  edge (IBM's heavy-hex family: degree ≤ 3 everywhere);
* :func:`all_to_all_topology` — a complete graph (trapped-ion devices),
  on which routing degenerates to the abstract circuit.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence


class TopologyError(ValueError):
    """Raised for malformed coupling graphs or out-of-range qubits."""


def _canonical_edges(edges: Iterable[Sequence[int]]) -> tuple[tuple[int, int], ...]:
    seen: set[tuple[int, int]] = set()
    for edge in edges:
        try:
            a, b = int(edge[0]), int(edge[1])
        except (TypeError, ValueError, IndexError) as error:
            raise TopologyError(f"malformed edge {edge!r}") from error
        if a == b:
            raise TopologyError(f"self-loop on qubit {a}")
        seen.add((min(a, b), max(a, b)))
    return tuple(sorted(seen))


class DeviceTopology:
    """An undirected, connected qubit coupling graph.

    Args:
        num_qubits: number of physical qubits, labelled ``0..n-1``.
        edges: iterable of qubit pairs that support a native two-qubit gate.
        name: display name used in tables, fingerprints and ``repro devices``.

    Distances are BFS hop counts, precomputed for all pairs at
    construction (device graphs are small — tens of qubits).
    """

    def __init__(self, num_qubits: int, edges: Iterable[Sequence[int]],
                 name: str = "custom"):
        if num_qubits < 1:
            raise TopologyError("a device needs at least one qubit")
        self.name = name
        self.num_qubits = num_qubits
        self.edges = _canonical_edges(edges)
        for a, b in self.edges:
            if a < 0 or b >= num_qubits:
                raise TopologyError(
                    f"edge ({a}, {b}) outside qubits 0..{num_qubits - 1}"
                )
        neighbors: list[list[int]] = [[] for _ in range(num_qubits)]
        for a, b in self.edges:
            neighbors[a].append(b)
            neighbors[b].append(a)
        self._neighbors = tuple(tuple(sorted(adjacent)) for adjacent in neighbors)
        self._distances = tuple(self._bfs(source) for source in range(num_qubits))
        if num_qubits > 1 and any(
            distance < 0 for row in self._distances for distance in row
        ):
            raise TopologyError(f"coupling graph {name!r} is not connected")

    def _bfs(self, source: int) -> tuple[int, ...]:
        distances = [-1] * self.num_qubits
        distances[source] = 0
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self._neighbors[current]:
                if distances[neighbor] < 0:
                    distances[neighbor] = distances[current] + 1
                    queue.append(neighbor)
        return tuple(distances)

    # -- metric -----------------------------------------------------------

    def _check(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise TopologyError(
                f"qubit {qubit} outside 0..{self.num_qubits - 1} on {self.name!r}"
            )

    def neighbors(self, qubit: int) -> tuple[int, ...]:
        """Qubits sharing a coupler with ``qubit``, ascending."""
        self._check(qubit)
        return self._neighbors[qubit]

    def degree(self, qubit: int) -> int:
        self._check(qubit)
        return len(self._neighbors[qubit])

    def distance(self, a: int, b: int) -> int:
        """Coupling-graph hop count between two qubits."""
        self._check(a)
        self._check(b)
        return self._distances[a][b]

    def is_adjacent(self, a: int, b: int) -> bool:
        return self.distance(a, b) == 1

    def next_hop(self, source: int, target: int) -> int:
        """The first step of the canonical shortest path ``source → target``.

        Deterministic: among neighbors strictly closer to ``target``, the
        smallest index wins, so routed circuits are reproducible.
        """
        self._check(source)
        self._check(target)
        if source == target:
            raise TopologyError("next_hop needs distinct qubits")
        remaining = self.distance(source, target)
        for neighbor in self._neighbors[source]:
            if self._distances[neighbor][target] == remaining - 1:
                return neighbor
        raise TopologyError("no path — graph is not connected")  # pragma: no cover

    def shortest_path(self, a: int, b: int) -> list[int]:
        """The canonical shortest path, endpoints included."""
        path = [a]
        while path[-1] != b:
            path.append(self.next_hop(path[-1], b))
        return path

    @property
    def diameter(self) -> int:
        """Largest pairwise distance."""
        return max(max(row) for row in self._distances)

    def __repr__(self) -> str:
        return (
            f"DeviceTopology({self.name!r}, qubits={self.num_qubits}, "
            f"edges={len(self.edges)})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DeviceTopology)
            and self.num_qubits == other.num_qubits
            and self.edges == other.edges
        )

    def __hash__(self) -> int:
        return hash((self.num_qubits, self.edges))


# -- builders ---------------------------------------------------------------


def linear_topology(num_qubits: int, name: str | None = None) -> DeviceTopology:
    """A 1-D nearest-neighbor chain ``0 - 1 - ... - n-1``."""
    if num_qubits < 1:
        raise TopologyError("a chain needs at least one qubit")
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return DeviceTopology(num_qubits, edges, name or f"linear-{num_qubits}")


def ring_topology(num_qubits: int, name: str | None = None) -> DeviceTopology:
    """A cycle: the chain plus the wrap-around coupler."""
    if num_qubits < 3:
        raise TopologyError("a ring needs at least three qubits")
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return DeviceTopology(num_qubits, edges, name or f"ring-{num_qubits}")


def grid_topology(rows: int, cols: int, name: str | None = None) -> DeviceTopology:
    """A ``rows × cols`` square lattice; qubit ``r * cols + c`` sits at
    ``(r, c)``."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            qubit = r * cols + c
            if c + 1 < cols:
                edges.append((qubit, qubit + 1))
            if r + 1 < rows:
                edges.append((qubit, qubit + cols))
    return DeviceTopology(rows * cols, edges, name or f"grid-{rows}x{cols}")


def heavy_hex_topology(rows: int = 1, cols: int = 1,
                       name: str | None = None) -> DeviceTopology:
    """A heavy-hex lattice: ``rows × cols`` hexagon cells with an extra
    qubit on every edge, so no qubit exceeds degree 3 (IBM's layout choice
    for frequency-collision avoidance).

    Built from the hexagonal lattice by subdividing each coupler; a single
    cell is a 12-qubit ring, larger tilings share cell walls.
    """
    if rows < 1 or cols < 1:
        raise TopologyError("heavy-hex dimensions must be positive")
    # Hexagonal lattice vertices on an axial grid, then subdivide edges.
    import networkx as nx

    hexagonal = nx.hexagonal_lattice_graph(rows, cols)
    vertices = sorted(hexagonal.nodes())
    index = {vertex: position for position, vertex in enumerate(vertices)}
    base_edges = sorted(
        (min(index[u], index[v]), max(index[u], index[v]))
        for u, v in hexagonal.edges()
    )
    edges = []
    next_qubit = len(vertices)
    for u, v in base_edges:  # one bridge qubit per hexagon edge
        edges.append((u, next_qubit))
        edges.append((next_qubit, v))
        next_qubit += 1
    return DeviceTopology(next_qubit, edges, name or f"heavy-hex-{rows}x{cols}")


def all_to_all_topology(num_qubits: int, name: str | None = None) -> DeviceTopology:
    """A complete coupling graph — trapped-ion style; routing is free."""
    if num_qubits < 1:
        raise TopologyError("a device needs at least one qubit")
    edges = [(i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)]
    return DeviceTopology(num_qubits, edges, name or f"all-to-all-{num_qubits}")
