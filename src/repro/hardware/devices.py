"""Named device registry and device-spec parsing.

Two kinds of names resolve to a :class:`~repro.hardware.topology.DeviceTopology`:

* **presets** — realistic machines, e.g. ``ibmq-manila`` (5-qubit line),
  ``ibm-falcon-27`` (IBM's 27-qubit heavy-hex Falcon coupling map, as on
  ``ibm_hanoi``/``ibmq_montreal``), ``ionq-aria-25`` (25 all-to-all
  trapped ions);
* **parametric specs** — ``linear-<n>``, ``ring-<n>``, ``grid-<r>x<c>``,
  ``heavy-hex-<r>x<c>``, ``all-to-all-<n>``, built on demand, so the CLI's
  ``--device grid-3x3`` needs no registration step.

Presets shadow parametric parses (lookup tries the registry first), and
both paths cache the built topology — distances are precomputed, so
repeated lookups stay cheap.
"""

from __future__ import annotations

from repro.hardware.topology import (
    DeviceTopology,
    TopologyError,
    all_to_all_topology,
    grid_topology,
    heavy_hex_topology,
    linear_topology,
    ring_topology,
)

#: The published coupling map of IBM's 27-qubit Falcon processors
#: (ibm_hanoi, ibmq_montreal, ...): a distance-3 heavy-hex patch.
_FALCON_27_EDGES = (
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7), (7, 10),
    (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15), (13, 14),
    (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20), (19, 22),
    (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
)

#: Preset builders: name -> (description, zero-argument constructor).
_PRESETS: dict[str, tuple[str, object]] = {
    "ibmq-manila": (
        "IBM Quantum Falcon r5.11L: 5 qubits in a line",
        lambda: linear_topology(5, name="ibmq-manila"),
    ),
    "ibm-falcon-27": (
        "IBM Falcon r4/r5 27-qubit heavy-hex (ibm_hanoi coupling map)",
        lambda: DeviceTopology(27, _FALCON_27_EDGES, name="ibm-falcon-27"),
    ),
    "ionq-aria-25": (
        "IonQ Aria: 25 trapped-ion qubits, all-to-all connectivity",
        lambda: all_to_all_topology(25, name="ionq-aria-25"),
    ),
    "sycamore-like-grid-4x4": (
        "4x4 square lattice patch (Google Sycamore style)",
        lambda: grid_topology(4, 4, name="sycamore-like-grid-4x4"),
    ),
}

_SPEC_HELP = (
    "linear-<n> | ring-<n> | grid-<r>x<c> | heavy-hex-<r>x<c> | all-to-all-<n>"
)

_cache: dict[str, DeviceTopology] = {}


def device_spec_help() -> str:
    """One-line syntax summary of the parametric device specs."""
    return _SPEC_HELP


def list_devices() -> list[tuple[str, str]]:
    """``(name, description)`` rows for every preset, sorted by name."""
    return sorted((name, entry[0]) for name, entry in _PRESETS.items())


def _parse_spec(spec: str) -> DeviceTopology | None:
    """Build a topology from a parametric name, or ``None`` if the name
    does not match any spec family."""
    family, _, parameter = spec.rpartition("-")
    if family == "grid" or family == "heavy-hex":
        if "x" not in parameter:
            raise TopologyError(f"{family} spec needs <rows>x<cols>: {spec!r}")
        try:
            rows, cols = (int(part) for part in parameter.split("x", 1))
        except ValueError as error:
            raise TopologyError(f"bad {family} dimensions in {spec!r}") from error
        builder = grid_topology if family == "grid" else heavy_hex_topology
        return builder(rows, cols)
    if family in ("linear", "ring", "all-to-all"):
        try:
            count = int(parameter)
        except ValueError as error:
            raise TopologyError(f"bad qubit count in {spec!r}") from error
        return {
            "linear": linear_topology,
            "ring": ring_topology,
            "all-to-all": all_to_all_topology,
        }[family](count)
    return None


def get_device(name: str) -> DeviceTopology:
    """Resolve a preset name or parametric spec to a topology.

    Raises:
        TopologyError: unknown name, or a spec with invalid parameters.
    """
    key = name.strip().lower()
    cached = _cache.get(key)
    if cached is not None:
        return cached
    preset = _PRESETS.get(key)
    if preset is not None:
        topology = preset[1]()
    else:
        topology = _parse_spec(key)
        if topology is None:
            known = ", ".join(sorted(_PRESETS))
            raise TopologyError(
                f"unknown device {name!r}; expected a preset ({known}) "
                f"or a spec ({_SPEC_HELP})"
            )
    _cache[key] = topology
    return topology


def resolve_device(device: "str | DeviceTopology | None") -> DeviceTopology | None:
    """Normalize a user-facing device argument: name, topology, or ``None``."""
    if device is None or isinstance(device, DeviceTopology):
        return device
    if isinstance(device, str):
        return get_device(device)
    raise TypeError(f"device must be a name or DeviceTopology, got {type(device).__name__}")
