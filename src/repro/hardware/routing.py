"""SWAP-insertion routing of logical circuits onto device topologies.

The Figure-3 synthesis emits CNOT ladders between arbitrary qubit pairs;
real devices only couple neighbors.  This pass maps a logical circuit onto
a :class:`~repro.hardware.topology.DeviceTopology` by maintaining a
logical→physical layout and, for every non-adjacent CNOT, walking the
control along the canonical shortest path with SWAPs (each decomposed
into its three-CNOT identity, so :attr:`QuantumCircuit.cnot_count` *is*
the routed two-qubit gate count).

The router is greedy and non-restoring: SWAPs permute the layout and stay
permuted, so a CNOT ladder into a shared target drags its controls into a
connected patch around the target — later rungs reuse the shortened
distances.  That is the "nearest-neighbor Steiner-ish" behaviour the cost
model relies on; an exact Steiner-tree router would do better still, but
greedy keeps routing deterministic and linear in ``gates × diameter``.

:func:`greedy_layout` picks the initial placement: logical qubits that
interact often are placed close together, seeded from the device's
most-central qubit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, cnot
from repro.hardware.topology import DeviceTopology, TopologyError


@dataclass(frozen=True)
class RoutingResult:
    """A routed circuit plus the layout bookkeeping that produced it.

    Attributes:
        circuit: the physical circuit on ``topology.num_qubits`` qubits;
            SWAPs appear as three-CNOT sequences.
        topology: the device routed onto.
        initial_layout: logical qubit ``i`` starts at physical
            ``initial_layout[i]``.
        final_layout: where each logical qubit ends up after the inserted
            SWAPs.
        swap_count: SWAPs inserted (each contributes 3 CNOTs).
        logical_two_qubit_count: CNOTs in the input circuit, for overhead
            reporting.
        logical_depth: depth of the input circuit before routing.
    """

    circuit: QuantumCircuit
    topology: DeviceTopology
    initial_layout: tuple[int, ...]
    final_layout: tuple[int, ...]
    swap_count: int
    logical_two_qubit_count: int
    logical_depth: int

    @property
    def two_qubit_count(self) -> int:
        """Routed CNOT count: logical CNOTs plus 3 per inserted SWAP."""
        return self.circuit.cnot_count

    @property
    def depth(self) -> int:
        return self.circuit.depth

    @property
    def routing_overhead(self) -> int:
        """Extra two-qubit gates the topology forced on the circuit."""
        return self.two_qubit_count - self.logical_two_qubit_count


def _check_layout(layout: list[int], num_logical: int, topology: DeviceTopology) -> None:
    if len(layout) != num_logical:
        raise TopologyError(
            f"layout places {len(layout)} qubits, circuit has {num_logical}"
        )
    if len(set(layout)) != len(layout):
        raise TopologyError("layout maps two logical qubits to one physical qubit")
    for physical in layout:
        if not 0 <= physical < topology.num_qubits:
            raise TopologyError(
                f"layout uses physical qubit {physical} outside the device"
            )


def route_circuit(
    circuit: QuantumCircuit,
    topology: DeviceTopology,
    initial_layout: "list[int] | tuple[int, ...] | None" = None,
) -> RoutingResult:
    """Map a logical circuit onto the device, inserting SWAPs as needed.

    Args:
        circuit: logical circuit; needs ``num_qubits <= topology.num_qubits``.
        topology: target coupling graph.
        initial_layout: logical→physical placement; defaults to the
            identity on the first ``num_qubits`` physical qubits.  Use
            :func:`greedy_layout` for an interaction-aware placement.

    The routed circuit acts on all device qubits; unused ones stay idle,
    so it equals the logical circuit up to the final layout permutation.
    """
    if circuit.num_qubits > topology.num_qubits:
        raise TopologyError(
            f"circuit needs {circuit.num_qubits} qubits, device "
            f"{topology.name!r} has {topology.num_qubits}"
        )
    if initial_layout is None:
        layout = list(range(circuit.num_qubits))
    else:
        layout = [int(q) for q in initial_layout]
        _check_layout(layout, circuit.num_qubits, topology)

    physical_of = list(layout)  # logical -> physical
    logical_at: list[int | None] = [None] * topology.num_qubits
    for logical, physical in enumerate(physical_of):
        logical_at[physical] = logical

    routed = QuantumCircuit(topology.num_qubits)
    swaps = 0

    def swap(a: int, b: int) -> None:
        """Exchange the (logical) contents of adjacent physical qubits."""
        nonlocal swaps
        routed.append(cnot(a, b))
        routed.append(cnot(b, a))
        routed.append(cnot(a, b))
        swaps += 1
        left, right = logical_at[a], logical_at[b]
        logical_at[a], logical_at[b] = right, left
        if left is not None:
            physical_of[left] = b
        if right is not None:
            physical_of[right] = a

    for gate in circuit:
        if not gate.is_two_qubit:
            routed.append(
                Gate(gate.name, (physical_of[gate.qubits[0]],), gate.parameter)
            )
            continue
        control, target = gate.qubits
        while topology.distance(physical_of[control], physical_of[target]) > 1:
            here = physical_of[control]
            swap(here, topology.next_hop(here, physical_of[target]))
        routed.append(cnot(physical_of[control], physical_of[target]))

    return RoutingResult(
        circuit=routed,
        topology=topology,
        initial_layout=tuple(layout),
        final_layout=tuple(physical_of),
        swap_count=swaps,
        logical_two_qubit_count=circuit.cnot_count,
        logical_depth=circuit.depth,
    )


# -- initial layout ----------------------------------------------------------


def interaction_weights(circuit: QuantumCircuit) -> dict[tuple[int, int], int]:
    """How often each logical qubit pair shares a two-qubit gate."""
    weights: dict[tuple[int, int], int] = {}
    for gate in circuit:
        if gate.is_two_qubit:
            a, b = gate.qubits
            pair = (min(a, b), max(a, b))
            weights[pair] = weights.get(pair, 0) + 1
    return weights


def greedy_layout(
    weights: dict[tuple[int, int], int],
    num_logical: int,
    topology: DeviceTopology,
) -> tuple[int, ...]:
    """Interaction-aware initial placement (deterministic).

    The most-interacting logical qubit goes to the device's most central
    physical qubit (minimal summed distance to all others); every
    subsequent logical qubit — in descending order of interaction with
    already-placed ones — takes the free physical qubit minimizing the
    weighted distance to its placed partners.  Isolated logical qubits
    fill the remaining free slots in index order.
    """
    if num_logical > topology.num_qubits:
        raise TopologyError(
            f"cannot place {num_logical} logical qubits on "
            f"{topology.num_qubits} physical qubits"
        )
    total = [0] * num_logical
    for (a, b), count in weights.items():
        if not (0 <= a < num_logical and 0 <= b < num_logical):
            raise TopologyError(f"interaction pair ({a}, {b}) outside the circuit")
        total[a] += count
        total[b] += count

    placed: dict[int, int] = {}  # logical -> physical
    free = set(range(topology.num_qubits))
    unplaced = set(range(num_logical))

    def centrality(physical: int) -> int:
        return sum(topology.distance(physical, other)
                   for other in range(topology.num_qubits))

    while unplaced:
        if not placed:
            # Heaviest logical qubit onto the most central physical qubit.
            logical = max(unplaced, key=lambda q: (total[q], -q))
            physical = min(free, key=lambda p: (centrality(p), p))
        else:
            def attachment(q: int) -> int:
                return sum(
                    count for (a, b), count in weights.items()
                    if (a == q and b in placed) or (b == q and a in placed)
                )
            logical = max(unplaced, key=lambda q: (attachment(q), -q))
            if attachment(logical) == 0:
                physical = min(free)
            else:
                def placement_cost(p: int) -> int:
                    return sum(
                        count * topology.distance(p, placed[b if a == logical else a])
                        for (a, b), count in weights.items()
                        if (a == logical and b in placed)
                        or (b == logical and a in placed)
                    )
                physical = min(free, key=lambda p: (placement_cost(p), p))
        placed[logical] = physical
        free.discard(physical)
        unplaced.discard(logical)

    return tuple(placed[logical] for logical in range(num_logical))


def layout_for_circuit(
    circuit: QuantumCircuit, topology: DeviceTopology
) -> tuple[int, ...]:
    """Greedy layout derived from a circuit's own CNOT interaction graph."""
    return greedy_layout(interaction_weights(circuit), circuit.num_qubits, topology)
