"""Bravyi-Kitaev transformation (Bravyi & Kitaev 2002).

Qubit ``k`` stores the occupation parity of the Fenwick-tree block ending
at mode ``k``, giving ``O(log N)`` Pauli weight per Majorana — the paper's
asymptotically-optimal baseline.

Derivation of the Majorana images used here (first principles, matching
Seeley-Richard-Love 2012):

* Flipping occupation ``n_j`` flips every stored block containing mode
  ``j``: ``X`` on ``{j} ∪ U(j)``.
* The fermionic sign carries the parity of modes ``< j``: ``Z`` on ``P(j)``.
  Hence the X-type Majorana ``m_{2j} = X_{U(j)} X_j Z_{P(j)}``.
* The Y-type partner is ``m_{2j+1} = i · m_{2j} · Ẑ_j`` where
  ``Ẑ_j = Z_j Z_{F(j)}`` reads occupation ``n_j`` from the encoded bits.
  Using ``i·X_j·Z_j = Y_j`` and ``F(j) ⊆ P(j)``:
  ``m_{2j+1} = X_{U(j)} Y_j Z_{P(j) \\ F(j)} = X_{U(j)} Y_j Z_{R(j)}``.
"""

from __future__ import annotations

from repro.encodings.base import MajoranaEncoding
from repro.encodings.fenwick import FenwickTree
from repro.paulis.strings import PauliString


def _mask(qubits) -> int:
    result = 0
    for qubit in qubits:
        result |= 1 << qubit
    return result


def bravyi_kitaev(num_modes: int) -> MajoranaEncoding:
    """Build the Bravyi-Kitaev encoding for ``num_modes`` modes."""
    if num_modes < 1:
        raise ValueError("num_modes must be positive")
    tree = FenwickTree(num_modes)
    strings = []
    for mode in range(num_modes):
        update_mask = _mask(tree.update_set(mode))
        parity_mask = _mask(tree.parity_set(mode))
        remainder_mask = _mask(tree.remainder_set(mode))
        own = 1 << mode
        # m_{2j} = X_{U(j)} X_j Z_{P(j)}
        strings.append(
            PauliString(num_modes, x_mask=update_mask | own, z_mask=parity_mask)
        )
        # m_{2j+1} = X_{U(j)} Y_j Z_{R(j)}  (Y_j sets both masks on `mode`)
        strings.append(
            PauliString(num_modes, x_mask=update_mask | own, z_mask=remainder_mask | own)
        )
    return MajoranaEncoding(strings, name="bravyi-kitaev")
