"""The universal fermion-to-qubit encoding container.

Every encoding in this package — Jordan-Wigner, Bravyi-Kitaev, parity,
ternary tree, and the SAT-derived optimal encodings — is fully described by
an ordered tuple of ``2N`` Pauli strings: the Majorana operator images.
Mode ``j`` pairs ``a_j = (m_{2j} + i·m_{2j+1}) / 2`` (Eq. 12 of the paper),
so the tuple order *is* the pairing; the simulated-annealing optimizer
permutes it.
"""

from __future__ import annotations

from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.fermion.majorana import MajoranaPolynomial, fermion_to_majorana
from repro.fermion.operators import FermionOperator
from repro.paulis.strings import PauliString
from repro.paulis.symplectic import dependent_subset
from repro.paulis.terms import PauliSum


class EncodingError(ValueError):
    """Raised when a set of Majorana strings violates an encoding constraint."""


class MajoranaEncoding:
    """A fermion-to-qubit encoding given by its Majorana Pauli strings.

    Args:
        strings: the ``2N`` Majorana images ``m_0 .. m_{2N-1}``; all must
            share one qubit count, which becomes :attr:`num_qubits`.
        name: label used in benchmark tables.
        validate: verify the anticommutation and algebraic-independence
            constraints at construction (cheap: ``O(N^2)`` pairs).
    """

    def __init__(self, strings, name: str = "custom", validate: bool = True):
        self.strings: tuple[PauliString, ...] = tuple(strings)
        self.name = name
        if not self.strings:
            raise EncodingError("an encoding needs at least one Majorana string")
        if len(self.strings) % 2 != 0:
            raise EncodingError("Majorana strings must come in pairs (2 per mode)")
        self.num_modes = len(self.strings) // 2
        self.num_qubits = self.strings[0].num_qubits
        if any(string.num_qubits != self.num_qubits for string in self.strings):
            raise EncodingError("all Majorana strings must have equal length")
        self._monomial_cache: dict[tuple[int, ...], tuple[PauliString, complex]] = {}
        if validate:
            self.validate()

    # -- constraint checking ---------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`EncodingError` unless the constraints of Section 3.1 hold."""
        for i, left in enumerate(self.strings):
            if left.is_identity:
                raise EncodingError(f"m_{i} is the identity string")
            for j in range(i + 1, len(self.strings)):
                if not left.anticommutes_with(self.strings[j]):
                    raise EncodingError(f"m_{i} and m_{j} do not anticommute")
        dependency = dependent_subset(self.strings)
        if dependency is not None:
            raise EncodingError(f"algebraic dependence among Majoranas {dependency}")

    def preserves_vacuum(self, tolerance: float = 1e-9) -> bool:
        """True when every ``a_j`` annihilates ``|0...0>`` (Eq. 6).

        Uses the closed form ``P|0..0> = i^{#Y(P)} |x_mask(P)>``: the image
        of the zero state under each annihilation operator is accumulated
        per computational basis vector and must vanish identically.
        """
        for mode in range(self.num_modes):
            amplitudes: dict[int, complex] = {}
            for string, coefficient in self.annihilation(mode).items():
                phase = 1j ** ((string.x_mask & string.z_mask).bit_count() % 4)
                basis = string.x_mask
                amplitudes[basis] = amplitudes.get(basis, 0j) + coefficient * phase
            if any(abs(amplitude) > tolerance for amplitude in amplitudes.values()):
                return False
        return True

    # -- operator images -----------------------------------------------------------

    def majorana(self, index: int) -> PauliString:
        """The Pauli image of Majorana operator ``m_index``."""
        return self.strings[index]

    def annihilation(self, mode: int) -> PauliSum:
        """``a_mode = (m_{2mode} + i·m_{2mode+1}) / 2``."""
        return PauliSum(
            self.num_qubits,
            {self.strings[2 * mode]: 0.5, self.strings[2 * mode + 1]: 0.5j},
        )

    def creation(self, mode: int) -> PauliSum:
        """``a†_mode = (m_{2mode} − i·m_{2mode+1}) / 2``."""
        return PauliSum(
            self.num_qubits,
            {self.strings[2 * mode]: 0.5, self.strings[2 * mode + 1]: -0.5j},
        )

    def monomial_image(self, monomial: tuple[int, ...]) -> tuple[PauliString, complex]:
        """Image of a canonical Majorana monomial: ``(string, phase)``."""
        cached = self._monomial_cache.get(monomial)
        if cached is not None:
            return cached
        string = PauliString.identity(self.num_qubits)
        phase = 1.0 + 0j
        for index in monomial:
            string, step_phase = string.multiply(self.strings[index])
            phase *= step_phase
        self._monomial_cache[monomial] = (string, phase)
        return string, phase

    # -- Hamiltonian encoding ---------------------------------------------------------

    def encode_majorana(self, polynomial: MajoranaPolynomial) -> PauliSum:
        """Map a Majorana polynomial to its qubit-space :class:`PauliSum`."""
        if polynomial.max_index >= len(self.strings):
            raise EncodingError(
                f"polynomial uses Majorana {polynomial.max_index} but the encoding "
                f"has only {len(self.strings)} strings"
            )
        result = PauliSum(self.num_qubits)
        for monomial, coefficient in polynomial.items():
            string, phase = self.monomial_image(monomial)
            result = result + PauliSum.from_term(string, coefficient * phase)
        return result

    def encode(self, target) -> PauliSum:
        """Encode a Hamiltonian-like object into qubit space.

        Accepts :class:`FermionicHamiltonian` (constant included),
        :class:`FermionOperator`, or :class:`MajoranaPolynomial`.
        """
        if isinstance(target, FermionicHamiltonian):
            encoded = self.encode_majorana(target.majorana)
            if target.constant:
                encoded = encoded + PauliSum.identity(self.num_qubits, target.constant)
            return encoded
        if isinstance(target, FermionOperator):
            return self.encode_majorana(fermion_to_majorana(target))
        if isinstance(target, MajoranaPolynomial):
            return self.encode_majorana(target)
        raise TypeError(f"cannot encode object of type {type(target).__name__}")

    # -- weight metrics -------------------------------------------------------------------

    @property
    def total_majorana_weight(self) -> int:
        """Hamiltonian-independent objective: summed weight of all strings."""
        return sum(string.weight for string in self.strings)

    def hamiltonian_pauli_weight(self, hamiltonian) -> int:
        """Hamiltonian-dependent metric: total weight of the encoded operator."""
        return self.encode(hamiltonian).without_identity().total_weight

    # -- pairing manipulation (for annealing) -------------------------------------------------

    def with_mode_order(self, order) -> "MajoranaEncoding":
        """Re-pair Majorana couples onto modes in a new order.

        ``order[j]`` names which original mode supplies the Majorana pair of
        new mode ``j``.  Pairs travel together, so anticommutativity, algebraic
        independence and vacuum preservation are unaffected (Section 4.2).
        """
        order = list(order)
        if sorted(order) != list(range(self.num_modes)):
            raise EncodingError("order must be a permutation of the modes")
        reordered = []
        for source in order:
            reordered.append(self.strings[2 * source])
            reordered.append(self.strings[2 * source + 1])
        return MajoranaEncoding(reordered, name=self.name, validate=False)

    def swap_modes(self, first: int, second: int) -> "MajoranaEncoding":
        """Exchange the Majorana pairs of two modes (the annealing move)."""
        order = list(range(self.num_modes))
        order[first], order[second] = order[second], order[first]
        return self.with_mode_order(order)

    def __repr__(self) -> str:
        labels = ", ".join(string.label() for string in self.strings)
        return f"MajoranaEncoding({self.name!r}, [{labels}])"
