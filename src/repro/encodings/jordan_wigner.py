"""Jordan-Wigner transformation (Jordan & Wigner 1928).

Mode ``j`` maps to qubit ``j`` with a Z-parity string on all lower qubits:

    ``m_{2j}   = Z_{j-1} ... Z_0 · X_j``
    ``m_{2j+1} = Z_{j-1} ... Z_0 · Y_j``

Pauli weight grows linearly, ``O(N)`` per Majorana — the baseline the
asymptotically better encodings (and the SAT optimum) are measured against.
For ``N = 2`` this reproduces the paper's Eq. 2 table
(``m_0 = IX, m_1 = IY, m_2 = XZ, m_3 = YZ``).
"""

from __future__ import annotations

from repro.encodings.base import MajoranaEncoding
from repro.paulis.strings import PauliString


def jordan_wigner(num_modes: int) -> MajoranaEncoding:
    """Build the Jordan-Wigner encoding for ``num_modes`` modes."""
    if num_modes < 1:
        raise ValueError("num_modes must be positive")
    strings = []
    for mode in range(num_modes):
        parity_mask = (1 << mode) - 1  # Z on all qubits below `mode`
        for operator in ("X", "Y"):
            x_bit, z_bit = (1, 0) if operator == "X" else (1, 1)
            strings.append(
                PauliString(
                    num_modes,
                    x_mask=x_bit << mode,
                    z_mask=parity_mask | (z_bit << mode),
                )
            )
    return MajoranaEncoding(strings, name="jordan-wigner")
