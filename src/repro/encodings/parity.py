"""Parity encoding (Bravyi, Gambetta, Mezzacapo, Temme 2017).

Qubit ``j`` stores the running parity of occupations ``0..j``, the mirror
image of Jordan-Wigner: single-mode occupation is local to two qubits but a
mode flip updates the entire suffix.

* Flipping ``n_j`` flips stored bits ``j..N-1``: ``X`` on that suffix.
* The sign parity of modes ``< j`` is stored directly at ``j-1``: one ``Z``.
  ``m_{2j} = X_{N-1..j} Z_{j-1}``.
* Occupation readout is ``Ẑ_j = Z_j Z_{j-1}``, so
  ``m_{2j+1} = i·m_{2j}·Ẑ_j = X_{N-1..j+1} Y_j`` (the ``Z_{j-1}`` pair cancels).
"""

from __future__ import annotations

from repro.encodings.base import MajoranaEncoding
from repro.paulis.strings import PauliString


def parity_encoding(num_modes: int) -> MajoranaEncoding:
    """Build the parity encoding for ``num_modes`` modes."""
    if num_modes < 1:
        raise ValueError("num_modes must be positive")
    strings = []
    full = (1 << num_modes) - 1
    for mode in range(num_modes):
        suffix_mask = full & ~((1 << mode) - 1)       # qubits mode..N-1
        previous_mask = (1 << (mode - 1)) if mode > 0 else 0
        # m_{2j} = X_{suffix} Z_{j-1}
        strings.append(PauliString(num_modes, x_mask=suffix_mask, z_mask=previous_mask))
        # m_{2j+1} = X_{suffix above j} Y_j
        strings.append(
            PauliString(num_modes, x_mask=suffix_mask, z_mask=1 << mode)
        )
    return MajoranaEncoding(strings, name="parity")
