"""JSON (de)serialization of encodings.

The artifact the compiler produces — an ordered list of Majorana Pauli
strings — is exactly what downstream toolchains need to persist; the JSON
schema keeps it human-readable and versioned.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.encodings.base import MajoranaEncoding
from repro.paulis.strings import PauliString

_FORMAT_VERSION = 1


def encoding_to_dict(encoding: MajoranaEncoding) -> dict:
    """Plain-data form of an encoding."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": encoding.name,
        "num_modes": encoding.num_modes,
        "majorana_strings": [string.label() for string in encoding.strings],
    }


def encoding_from_dict(data: dict, validate: bool = True) -> MajoranaEncoding:
    """Rebuild an encoding from :func:`encoding_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported encoding format version: {version!r}")
    strings = [PauliString.from_label(label) for label in data["majorana_strings"]]
    encoding = MajoranaEncoding(strings, name=data.get("name", "loaded"),
                                validate=validate)
    if encoding.num_modes != data["num_modes"]:
        raise ValueError("num_modes field inconsistent with string count")
    return encoding


def save_encoding(encoding: MajoranaEncoding, path: str | Path) -> None:
    """Write an encoding to a JSON file."""
    Path(path).write_text(json.dumps(encoding_to_dict(encoding), indent=2) + "\n")


def load_encoding(path: str | Path, validate: bool = True) -> MajoranaEncoding:
    """Read an encoding from a JSON file (validated by default)."""
    return encoding_from_dict(json.loads(Path(path).read_text()), validate=validate)
