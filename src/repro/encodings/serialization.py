"""JSON (de)serialization of encodings and full compilation results.

The artifact the compiler produces — an ordered list of Majorana Pauli
strings — is exactly what downstream toolchains need to persist; the JSON
schema keeps it human-readable and versioned.

Two schemas live here:

* **encoding schema** (``format_version``): just the Majorana strings, the
  long-standing interchange format of ``repro solve --output`` and
  ``repro verify``.
* **result schema** (``result_format_version``): a full
  :class:`repro.core.pipeline.CompilationResult` — encoding, method,
  weight, optimality proof status, the complete descent trace, and the
  annealing/verification records when present.  This is what the
  ``repro.store`` compilation cache persists, so cached entries can be
  returned as first-class results (descent step counts included) without
  re-running the solver.

The result (de)serializers import the core dataclasses lazily: ``repro.core``
imports this package's siblings, and keeping the dependency one-way at
module-import time avoids a cycle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.encodings.base import MajoranaEncoding
from repro.paulis.strings import PauliString

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.pipeline import CompilationResult

_FORMAT_VERSION = 1
_RESULT_FORMAT_VERSION = 1


def encoding_to_dict(encoding: MajoranaEncoding) -> dict:
    """Plain-data form of an encoding."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": encoding.name,
        "num_modes": encoding.num_modes,
        "majorana_strings": [string.label() for string in encoding.strings],
    }


def encoding_from_dict(data: dict, validate: bool = True) -> MajoranaEncoding:
    """Rebuild an encoding from :func:`encoding_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported encoding format version: {version!r}")
    strings = [PauliString.from_label(label) for label in data["majorana_strings"]]
    encoding = MajoranaEncoding(strings, name=data.get("name", "loaded"),
                                validate=validate)
    if encoding.num_modes != data["num_modes"]:
        raise ValueError("num_modes field inconsistent with string count")
    return encoding


def save_encoding(encoding: MajoranaEncoding, path: str | Path) -> None:
    """Write an encoding to a JSON file."""
    Path(path).write_text(json.dumps(encoding_to_dict(encoding), indent=2) + "\n")


def load_encoding(path: str | Path, validate: bool = True) -> MajoranaEncoding:
    """Read an encoding from a JSON file (validated by default)."""
    return encoding_from_dict(json.loads(Path(path).read_text()), validate=validate)


# -- full compilation results -------------------------------------------------


def step_to_dict(step) -> dict:
    """Plain-data form of one :class:`~repro.core.descent.DescentStep`
    (shared by the result schema and descent checkpoints)."""
    return {
        "bound": step.bound,
        "status": step.status,
        "achieved_weight": step.achieved_weight,
        "elapsed_s": step.elapsed_s,
        "conflicts": step.conflicts,
        "repairs": step.repairs,
        "decisions": step.decisions,
        "propagations": step.propagations,
        "restarts": step.restarts,
    }


def step_from_dict(step: dict):
    """Rebuild one descent step from :func:`step_to_dict` output."""
    from repro.core.descent import DescentStep
    from repro.sat.solver import SolverStats

    return DescentStep(
        bound=step["bound"],
        status=step["status"],
        achieved_weight=step["achieved_weight"],
        elapsed_s=step["elapsed_s"],
        stats=SolverStats(
            conflicts=step.get("conflicts", 0),
            decisions=step.get("decisions", 0),
            propagations=step.get("propagations", 0),
            restarts=step.get("restarts", 0),
        ),
        repairs=step.get("repairs", 0),
    )


def result_to_dict(result: CompilationResult) -> dict:
    """Plain-data form of a full compilation result (result schema v1)."""
    descent = result.descent
    data: dict = {
        "result_format_version": _RESULT_FORMAT_VERSION,
        "encoding": encoding_to_dict(result.encoding),
        "method": result.method,
        "weight": result.weight,
        "proved_optimal": result.proved_optimal,
        "degraded": result.degraded,
        "descent": {
            "encoding": encoding_to_dict(descent.encoding),
            "weight": descent.weight,
            "proved_optimal": descent.proved_optimal,
            "steps": [step_to_dict(step) for step in descent.steps],
            "construct_time_s": descent.construct_time_s,
            "solve_time_s": descent.solve_time_s,
            "preprocess_time_s": descent.preprocess_time_s,
            "repairs": descent.repairs,
            "strategy": descent.strategy,
            "degraded": descent.degraded,
            "target_bound": descent.target_bound,
            "resumed": descent.resumed,
        },
        "annealing": None,
        "verification": None,
        "device": result.device,
        "hardware": None if result.hardware is None else result.hardware.as_dict(),
        "proof": result.proof,
    }
    if result.annealing is not None:
        annealing = result.annealing
        data["annealing"] = {
            "encoding": encoding_to_dict(annealing.encoding),
            "weight": annealing.weight,
            "initial_weight": annealing.initial_weight,
            "mode_order": list(annealing.mode_order),
            "accepted_moves": annealing.accepted_moves,
            "attempted_moves": annealing.attempted_moves,
            "history": list(annealing.history),
        }
    if result.verification is not None:
        verification = result.verification
        data["verification"] = {
            "anticommutativity": verification.anticommutativity,
            "algebraic_independence": verification.algebraic_independence,
            "vacuum_preservation": verification.vacuum_preservation,
            "violations": list(verification.violations),
        }
    return data


def result_from_dict(data: dict, validate: bool = True) -> CompilationResult:
    """Rebuild a compilation result from :func:`result_to_dict` output.

    Args:
        data: a result-schema dictionary.
        validate: re-check the encoding constraints while rebuilding the
            Majorana strings (recommended for data read from disk).

    Raises:
        ValueError: on an unknown schema version or malformed payload.
    """
    from repro.core.annealing import AnnealingResult
    from repro.core.descent import DescentResult
    from repro.core.pipeline import CompilationResult
    from repro.core.verify import VerificationReport

    version = data.get("result_format_version")
    if version != _RESULT_FORMAT_VERSION:
        raise ValueError(f"unsupported result format version: {version!r}")

    descent_data = data["descent"]
    descent = DescentResult(
        encoding=encoding_from_dict(descent_data["encoding"], validate=validate),
        weight=descent_data["weight"],
        proved_optimal=descent_data["proved_optimal"],
        steps=[step_from_dict(step)
               for step in descent_data.get("steps", [])],
        construct_time_s=descent_data.get("construct_time_s", 0.0),
        solve_time_s=descent_data.get("solve_time_s", 0.0),
        preprocess_time_s=descent_data.get("preprocess_time_s", 0.0),
        repairs=descent_data.get("repairs", 0),
        strategy=descent_data.get("strategy", "linear"),
        # resilience fields postdate schema v1 entries; default like any run
        # that finished cleanly.
        degraded=descent_data.get("degraded", False),
        target_bound=descent_data.get("target_bound"),
        resumed=descent_data.get("resumed", False),
    )

    annealing = None
    if data.get("annealing") is not None:
        annealing_data = data["annealing"]
        annealing = AnnealingResult(
            encoding=encoding_from_dict(annealing_data["encoding"], validate=validate),
            weight=annealing_data["weight"],
            initial_weight=annealing_data["initial_weight"],
            mode_order=list(annealing_data["mode_order"]),
            accepted_moves=annealing_data.get("accepted_moves", 0),
            attempted_moves=annealing_data.get("attempted_moves", 0),
            history=list(annealing_data.get("history", [])),
        )

    verification = None
    if data.get("verification") is not None:
        verification_data = data["verification"]
        verification = VerificationReport(
            anticommutativity=verification_data["anticommutativity"],
            algebraic_independence=verification_data["algebraic_independence"],
            vacuum_preservation=verification_data["vacuum_preservation"],
            violations=list(verification_data.get("violations", [])),
        )

    hardware = None
    if data.get("hardware") is not None:
        from repro.hardware.cost import HardwareCost

        hardware = HardwareCost.from_dict(data["hardware"])

    return CompilationResult(
        encoding=encoding_from_dict(data["encoding"], validate=validate),
        method=data["method"],
        weight=data["weight"],
        proved_optimal=data["proved_optimal"],
        descent=descent,
        annealing=annealing,
        verification=verification,
        device=data.get("device"),
        hardware=hardware,
        proof=data.get("proof"),
        degraded=data.get("degraded", False),
    )


def save_result(result: CompilationResult, path: str | Path) -> None:
    """Write a full compilation result to a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def load_result(path: str | Path, validate: bool = True) -> CompilationResult:
    """Read a full compilation result from a JSON file."""
    return result_from_dict(json.loads(Path(path).read_text()), validate=validate)
