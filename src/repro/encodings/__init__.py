"""Fermion-to-qubit encodings: the universal container and the baselines."""

from repro.encodings.base import EncodingError, MajoranaEncoding
from repro.encodings.bravyi_kitaev import bravyi_kitaev
from repro.encodings.fenwick import FenwickTree
from repro.encodings.jordan_wigner import jordan_wigner
from repro.encodings.parity import parity_encoding
from repro.encodings.random_encoding import random_clifford_gates, random_encoding
from repro.encodings.ternary_tree import ternary_tree, ternary_tree_paths

__all__ = [
    "EncodingError",
    "FenwickTree",
    "MajoranaEncoding",
    "bravyi_kitaev",
    "jordan_wigner",
    "parity_encoding",
    "random_clifford_gates",
    "random_encoding",
    "ternary_tree",
    "ternary_tree_paths",
]
