"""Ternary-tree encoding (Jiang, Kalev, Mruczkiewicz, Neven 2020).

Qubits are the nodes of a balanced ternary tree (BFS indexing: node ``q``
has children ``3q+1, 3q+2, 3q+3`` when those indices are below ``N``).
Each root-to-empty-slot path yields a Pauli string — the branch taken at a
node fixes the operator (X/Y/Z) on that node's qubit.  Any two paths
diverge at exactly one shared node with different operators and are
disjoint below it, so all ``2N + 1`` path strings pairwise anticommute.
Dropping one (the all-Z path, conventionally) leaves ``2N`` Majorana
operators of weight ``ceil(log3(2N+1))`` — the optimal average weight per
Majorana.

The plain construction does not promise vacuum preservation (the Bonsai
follow-up adds that); it serves here as a Hamiltonian-independent
weight baseline and a descent-start alternative.
"""

from __future__ import annotations

from repro.encodings.base import MajoranaEncoding
from repro.paulis.strings import PauliString

_BRANCHES = ("X", "Y", "Z")


def ternary_tree_paths(num_qubits: int) -> list[dict[int, str]]:
    """All ``2N + 1`` root-to-slot paths in DFS (X, Y, Z) order.

    Each path is a ``{qubit: operator}`` mapping.
    """
    paths: list[dict[int, str]] = []

    def descend(node: int, path: dict[int, str]) -> None:
        for branch_index, operator in enumerate(_BRANCHES):
            child = 3 * node + branch_index + 1
            extended = dict(path)
            extended[node] = operator
            if child < num_qubits:
                descend(child, extended)
            else:
                paths.append(extended)

    descend(0, {})
    return paths


def ternary_tree(num_modes: int) -> MajoranaEncoding:
    """Build the ternary-tree encoding for ``num_modes`` modes."""
    if num_modes < 1:
        raise ValueError("num_modes must be positive")
    paths = ternary_tree_paths(num_modes)
    # The DFS visits Z-branches last, so the final path is the all-Z chain;
    # dropping it keeps the 2N lowest-weight strings.
    kept = paths[:-1]
    strings = [
        PauliString.from_operators(num_modes, path) for path in kept
    ]
    return MajoranaEncoding(strings, name="ternary-tree")
