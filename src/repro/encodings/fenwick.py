"""Fenwick-tree index structure underlying the Bravyi-Kitaev encoding.

The Bravyi-Kitaev transformation stores, at qubit ``k``, the occupation
parity of a contiguous block of modes ``[lo_k, k]`` arranged as a Fenwick
(binary indexed) tree.  Three index sets per mode drive the encoding:

* **update set** ``U(j)`` — ancestors of ``j``: qubits whose stored block
  contains mode ``j`` and must flip when its occupation flips;
* **flip set** ``F(j)`` — children of ``j``: together with qubit ``j`` they
  recover the single-mode occupation ``n_j = s_j ⊕ (⊕_{c∈F(j)} s_c)``;
* **parity set** ``P(j)`` — a disjoint tiling of ``[0, j-1]`` by stored
  blocks, giving the prefix parity that sets the fermionic sign.

The remainder set ``R(j) = P(j) \\ F(j)`` appears in the Y-type Majorana
(see :mod:`repro.encodings.bravyi_kitaev` for the derivation).
"""

from __future__ import annotations


class FenwickTree:
    """Fenwick tree over ``n`` mode indices with BK index-set queries."""

    def __init__(self, num_modes: int):
        if num_modes < 1:
            raise ValueError("num_modes must be positive")
        self.num_modes = num_modes
        self.parent: list[int | None] = [None] * num_modes
        self._build(0, num_modes - 1)
        self.children: list[list[int]] = [[] for _ in range(num_modes)]
        for node, parent in enumerate(self.parent):
            if parent is not None:
                self.children[parent].append(node)
        self._block_low = [self._compute_block_low(node) for node in range(num_modes)]

    def _build(self, low: int, high: int) -> None:
        """Recursive Fenwick construction: the median of ``[low, high]``
        becomes a child of ``high``; recurse on both halves."""
        if low >= high:
            return
        pivot = (low + high) // 2
        self.parent[pivot] = high
        self._build(low, pivot)
        self._build(pivot + 1, high)

    def _compute_block_low(self, node: int) -> int:
        """Lowest mode in the contiguous block stored at ``node``."""
        low = node
        frontier = [child for child in self.children[node] if child < node]
        while frontier:
            candidate = min(frontier)
            low = min(low, candidate)
            frontier = [child for child in self.children[candidate] if child < candidate]
        return low

    # -- BK index sets ------------------------------------------------------

    def update_set(self, mode: int) -> list[int]:
        """Ancestors of ``mode`` (ascending)."""
        result = []
        node = self.parent[mode]
        while node is not None:
            result.append(node)
            node = self.parent[node]
        return sorted(result)

    def flip_set(self, mode: int) -> list[int]:
        """Direct children of ``mode`` (all below it)."""
        return sorted(self.children[mode])

    def parity_set(self, mode: int) -> list[int]:
        """Nodes whose stored blocks tile ``[0, mode-1]`` disjointly.

        Greedy: node ``r`` always stores a block ending at ``r``, so taking
        ``r = mode - 1`` and continuing below its block low covers the
        prefix exactly.
        """
        result = []
        remaining = mode - 1
        while remaining >= 0:
            result.append(remaining)
            remaining = self._block_low[remaining] - 1
        return sorted(result)

    def remainder_set(self, mode: int) -> list[int]:
        """``P(mode)`` minus ``F(mode)`` — children of ``mode`` always tile
        the top of the prefix, so set difference equals symmetric difference."""
        flips = set(self.flip_set(mode))
        return sorted(node for node in self.parity_set(mode) if node not in flips)

    def block(self, node: int) -> tuple[int, int]:
        """The contiguous mode interval ``[low, node]`` stored at ``node``."""
        return self._block_low[node], node
