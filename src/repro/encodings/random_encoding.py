"""Random valid fermion-to-qubit encodings via Clifford scrambling.

Conjugating every Majorana string of a valid encoding by one Clifford
unitary preserves pairwise anticommutation and algebraic independence
(conjugation is an automorphism of the Pauli group), so scrambling
Jordan-Wigner with a random Clifford circuit yields a *uniformly
structureless* valid encoding.  Uses:

* a rich generator for property-based tests (every invariant that holds
  for JW/BK must hold for any scrambled encoding);
* the "random valid encoding" baseline ablation — how much of
  Fermihedral's win comes from optimization rather than mere validity.

Vacuum preservation is *not* preserved by general Clifford conjugation
(the state ``U|0...0>`` is some stabilizer state, not ``|0...0>``), so
scrambled encodings suit weight studies, not vacuum-dependent ones.
"""

from __future__ import annotations

import random

from repro.encodings.base import MajoranaEncoding
from repro.encodings.jordan_wigner import jordan_wigner
from repro.paulis.clifford import CliffordGate, conjugate_sequence


def random_clifford_gates(
    num_qubits: int, depth: int, rng: random.Random
) -> list[CliffordGate]:
    """A random sequence of elementary Clifford generators."""
    gates: list[CliffordGate] = []
    for _ in range(depth):
        kind = rng.randrange(3)
        if kind == 2 and num_qubits >= 2:
            control, target = rng.sample(range(num_qubits), 2)
            gates.append(CliffordGate("CNOT", (control, target)))
        else:
            gates.append(CliffordGate("HS"[kind % 2], (rng.randrange(num_qubits),)))
    return gates


def random_encoding(
    num_modes: int,
    seed: int = 0,
    depth: int | None = None,
    base: MajoranaEncoding | None = None,
) -> MajoranaEncoding:
    """A random valid encoding: ``base`` (default Jordan-Wigner) scrambled
    by a random Clifford circuit of ``depth`` generators (default ``8N``).

    Signs from conjugation are dropped: a global ``-1`` on a Majorana
    operator is itself a valid Majorana operator (``{-m, -m} = 2`` holds),
    and Pauli weight ignores signs.
    """
    rng = random.Random(seed)
    base = base or jordan_wigner(num_modes)
    if base.num_modes != num_modes:
        raise ValueError("base encoding mode count mismatch")
    if depth is None:
        depth = 8 * num_modes
    gates = random_clifford_gates(num_modes, depth, rng)
    scrambled = []
    for string in base.strings:
        conjugated, _ = conjugate_sequence(string, gates)
        scrambled.append(conjugated)
    return MajoranaEncoding(scrambled, name=f"random-{seed}", validate=False)
