"""Fermihedral reproduction: SAT-optimal fermion-to-qubit encoding compiler.

Reproduces "Fermihedral: On the Optimal Compilation for Fermion-to-Qubit
Encoding" (ASPLOS 2024).  The public API re-exports the pieces a typical
workflow needs:

    >>> from repro import FermihedralCompiler, h2_hamiltonian, bravyi_kitaev
    >>> h2 = h2_hamiltonian()
    >>> result = FermihedralCompiler(num_modes=4).full_sat(h2)   # doctest: +SKIP
    >>> result.weight <= bravyi_kitaev(4).hamiltonian_pauli_weight(h2)  # doctest: +SKIP
    True

See DESIGN.md for the subsystem inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.circuits import (
    QuantumCircuit,
    optimize_circuit,
    pauli_evolution_circuit,
    trotter_circuit,
)
from repro.core import (
    AnnealingSchedule,
    CompilationResult,
    FermihedralCompiler,
    FermihedralConfig,
    SolverBudget,
    anneal_pairing,
    descend,
    solve_full_sat,
    solve_hamiltonian_independent,
    solve_sat_annealing,
    verify_encoding,
)
from repro.encodings import (
    MajoranaEncoding,
    bravyi_kitaev,
    jordan_wigner,
    parity_encoding,
    ternary_tree,
)
from repro.fermion import (
    FermionOperator,
    FermionicHamiltonian,
    MajoranaPolynomial,
    h2_hamiltonian,
    hubbard_chain,
    hubbard_lattice,
    molecular_hamiltonian,
    random_molecular_hamiltonian,
    syk_hamiltonian,
)
from repro.hardware import (
    DeviceTopology,
    HardwareCost,
    HardwareCostModel,
    connectivity_weights,
    get_device,
    list_devices,
    route_circuit,
)
from repro.parallel import PortfolioSolver, ProcessBatchExecutor
from repro.paulis import PauliString, PauliSum
from repro.service import CompilationService, ServiceClient
from repro.store import (
    BatchCompiler,
    CompilationCache,
    CompileJob,
    compilation_key,
    default_cache_dir,
)
from repro.telemetry import MetricsRegistry, Telemetry, Tracer
from repro.simulator import (
    NoiseModel,
    diagonalize,
    expectation_pauli_sum,
    ionq_aria1_noise,
    run_circuit,
    simulate_noisy_energy,
    zero_state,
)

# Single source of truth for the package version: setup.py parses this
# constant, so installed-distribution metadata can never disagree with the
# code actually running (a stale `pip install` next to a PYTHONPATH=src
# checkout would otherwise win).
__version__ = "1.4.0"

__all__ = [
    "AnnealingSchedule",
    "BatchCompiler",
    "CompilationCache",
    "CompilationResult",
    "CompilationService",
    "CompileJob",
    "DeviceTopology",
    "FermihedralCompiler",
    "FermihedralConfig",
    "FermionOperator",
    "FermionicHamiltonian",
    "HardwareCost",
    "HardwareCostModel",
    "MajoranaEncoding",
    "MajoranaPolynomial",
    "MetricsRegistry",
    "NoiseModel",
    "PauliString",
    "PauliSum",
    "PortfolioSolver",
    "ProcessBatchExecutor",
    "QuantumCircuit",
    "ServiceClient",
    "SolverBudget",
    "Telemetry",
    "Tracer",
    "anneal_pairing",
    "bravyi_kitaev",
    "compilation_key",
    "connectivity_weights",
    "default_cache_dir",
    "descend",
    "diagonalize",
    "get_device",
    "list_devices",
    "route_circuit",
    "expectation_pauli_sum",
    "h2_hamiltonian",
    "hubbard_chain",
    "hubbard_lattice",
    "ionq_aria1_noise",
    "jordan_wigner",
    "molecular_hamiltonian",
    "optimize_circuit",
    "parity_encoding",
    "pauli_evolution_circuit",
    "random_molecular_hamiltonian",
    "run_circuit",
    "simulate_noisy_energy",
    "solve_full_sat",
    "solve_hamiltonian_independent",
    "solve_sat_annealing",
    "syk_hamiltonian",
    "ternary_tree",
    "trotter_circuit",
    "verify_encoding",
    "zero_state",
]
