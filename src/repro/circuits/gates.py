"""Quantum gate IR.

A minimal gate set sufficient for Pauli-evolution circuits (the paper's
Figure 3 recipe): Hadamard, phase gates, Pauli gates, Z-rotation and CNOT.
Gates are immutable; inverses are first-class so the peephole optimizer
can cancel adjacent inverse pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Gate names with no parameter.
CLIFFORD_NAMES = {"H", "S", "SDG", "X", "Y", "Z", "CNOT"}
#: Self-inverse gates.
_SELF_INVERSE = {"H", "X", "Y", "Z", "CNOT"}
#: Inverse pairs among the phase gates.
_INVERSE_NAME = {"S": "SDG", "SDG": "S"}

TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class Gate:
    """One gate application.

    Attributes:
        name: one of ``H S SDG X Y Z RZ CNOT``.
        qubits: target qubits; for CNOT ``(control, target)``.
        parameter: rotation angle for ``RZ``; ``None`` otherwise.
    """

    name: str
    qubits: tuple[int, ...]
    parameter: float | None = None

    def __post_init__(self):
        if self.name == "RZ":
            if self.parameter is None:
                raise ValueError("RZ requires an angle")
            if len(self.qubits) != 1:
                raise ValueError("RZ acts on one qubit")
        elif self.name == "CNOT":
            if len(self.qubits) != 2 or self.qubits[0] == self.qubits[1]:
                raise ValueError("CNOT needs two distinct qubits")
            if self.parameter is not None:
                raise ValueError("CNOT takes no parameter")
        elif self.name in CLIFFORD_NAMES:
            if len(self.qubits) != 1:
                raise ValueError(f"{self.name} acts on one qubit")
            if self.parameter is not None:
                raise ValueError(f"{self.name} takes no parameter")
        else:
            raise ValueError(f"unknown gate: {self.name!r}")

    @property
    def is_two_qubit(self) -> bool:
        return self.name == "CNOT"

    def inverse(self) -> "Gate":
        """The inverse gate (same qubits)."""
        if self.name in _SELF_INVERSE:
            return self
        if self.name in _INVERSE_NAME:
            return Gate(_INVERSE_NAME[self.name], self.qubits)
        return Gate("RZ", self.qubits, -self.parameter)

    def is_inverse_of(self, other: "Gate") -> bool:
        """True when composing with ``other`` yields identity."""
        if self.qubits != other.qubits:
            return False
        if self.name == "RZ" and other.name == "RZ":
            return math.isclose(
                math.remainder(self.parameter + other.parameter, 2.0 * TWO_PI),
                0.0,
                abs_tol=1e-12,
            )
        return self.inverse().name == other.name

    def __repr__(self) -> str:
        if self.parameter is not None:
            return f"{self.name}({self.parameter:.6g}) q{list(self.qubits)}"
        return f"{self.name} q{list(self.qubits)}"


def h(qubit: int) -> Gate:
    return Gate("H", (qubit,))


def s(qubit: int) -> Gate:
    return Gate("S", (qubit,))


def sdg(qubit: int) -> Gate:
    return Gate("SDG", (qubit,))


def x(qubit: int) -> Gate:
    return Gate("X", (qubit,))


def y(qubit: int) -> Gate:
    return Gate("Y", (qubit,))


def z(qubit: int) -> Gate:
    return Gate("Z", (qubit,))


def rz(qubit: int, angle: float) -> Gate:
    return Gate("RZ", (qubit,), angle)


def cnot(control: int, target: int) -> Gate:
    return Gate("CNOT", (control, target))
