"""First-order Trotterization of Pauli-sum Hamiltonians.

``exp(iHt) ≈ (Π_j exp(i w_j P_j t / r))^r`` for ``H = Σ_j w_j P_j``
(Section 2.1.2).  Term order is deterministic (sorted labels) unless a
custom order is supplied, so gate-count comparisons between encodings are
apples-to-apples.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.pauli_evolution import pauli_evolution_circuit
from repro.paulis.strings import PauliString
from repro.paulis.terms import PauliSum

_IMAG_TOLERANCE = 1e-9


def trotter_circuit(
    hamiltonian: PauliSum,
    time: float = 1.0,
    steps: int = 1,
    term_order: Sequence[PauliString] | None = None,
    order: int = 1,
) -> QuantumCircuit:
    """Build a Trotter circuit for ``exp(i · hamiltonian · time)``.

    Args:
        hamiltonian: hermitian :class:`PauliSum` (identity terms are global
            phases and are skipped).
        time: total evolution time ``t``.
        steps: Trotter step count ``r``.
        term_order: explicit term ordering; defaults to sorted labels.
        order: product-formula order — 1 (Lie-Trotter) or 2 (symmetric
            Suzuki: half-step forward then half-step reversed, error
            ``O(t^3 / r^2)``).
    """
    if steps < 1:
        raise ValueError("steps must be positive")
    if order not in (1, 2):
        raise ValueError("only product-formula orders 1 and 2 are supported")
    if not hamiltonian.is_hermitian(_IMAG_TOLERANCE):
        raise ValueError("Trotterization needs a hermitian Hamiltonian")

    if term_order is None:
        terms = hamiltonian.sorted_terms()
    else:
        terms = [(string, hamiltonian.coefficient(string)) for string in term_order]
    terms = [(string, coefficient) for string, coefficient in terms
             if not string.is_identity]

    circuit = QuantumCircuit(hamiltonian.num_qubits)
    slice_time = time / steps

    def emit(sequence, scale: float) -> None:
        for string, coefficient in sequence:
            circuit.extend(
                pauli_evolution_circuit(string, coefficient.real * scale).gates
            )

    for _ in range(steps):
        if order == 1:
            emit(terms, slice_time)
        else:
            emit(terms, slice_time / 2.0)
            emit(list(reversed(terms)), slice_time / 2.0)
    return circuit
