"""Quantum circuit container with gate statistics.

Tracks exactly the metrics Table 6 of the paper reports: single-qubit gate
count, CNOT count, total count and circuit depth (greedy ASAP layering —
each gate is scheduled one layer after the latest busy layer among its
qubits).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.circuits.gates import Gate


class QuantumCircuit:
    """An ordered list of gates on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, gates: Iterable[Gate] = ()):
        if num_qubits < 1:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = num_qubits
        self._gates: list[Gate] = []
        for gate in gates:
            self.append(gate)

    # -- construction ---------------------------------------------------------

    def append(self, gate: Gate) -> None:
        if any(qubit < 0 or qubit >= self.num_qubits for qubit in gate.qubits):
            raise ValueError(f"{gate!r} touches qubits outside 0..{self.num_qubits - 1}")
        self._gates.append(gate)

    def extend(self, gates: Iterable[Gate]) -> None:
        for gate in gates:
            self.append(gate)

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """This circuit followed by ``other``."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit counts differ")
        return QuantumCircuit(self.num_qubits, list(self._gates) + list(other._gates))

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit: reversed order, inverted gates."""
        return QuantumCircuit(
            self.num_qubits, [gate.inverse() for gate in reversed(self._gates)]
        )

    def copy(self) -> "QuantumCircuit":
        return QuantumCircuit(self.num_qubits, self._gates)

    # -- inspection --------------------------------------------------------------

    @property
    def gates(self) -> list[Gate]:
        return list(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    @property
    def single_qubit_count(self) -> int:
        return sum(1 for gate in self._gates if not gate.is_two_qubit)

    @property
    def cnot_count(self) -> int:
        return sum(1 for gate in self._gates if gate.is_two_qubit)

    @property
    def total_count(self) -> int:
        return len(self._gates)

    @property
    def depth(self) -> int:
        """ASAP-layered depth."""
        busy_until = [0] * self.num_qubits
        depth = 0
        for gate in self._gates:
            layer = 1 + max(busy_until[qubit] for qubit in gate.qubits)
            for qubit in gate.qubits:
                busy_until[qubit] = layer
            depth = max(depth, layer)
        return depth

    def gate_statistics(self) -> dict[str, int]:
        """The Table-6 row for this circuit."""
        return {
            "single": self.single_qubit_count,
            "cnot": self.cnot_count,
            "total": self.total_count,
            "depth": self.depth,
        }

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(qubits={self.num_qubits}, gates={len(self._gates)}, "
            f"depth={self.depth})"
        )
