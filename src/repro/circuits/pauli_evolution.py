"""Synthesis of single Pauli-string evolution operators ``exp(i λ P)``.

This is the paper's Figure 3 recipe:

1. basis-change layer: ``H`` where the operator is ``X``; ``S† H`` where it
   is ``Y`` (so the local operator becomes ``Z``);
2. CNOT ladder from every support qubit into a target qubit, accumulating
   the parity;
3. ``RZ(-2λ)`` on the target (``exp(iλZ) = RZ(-2λ)`` up to global phase);
4. the CNOT ladder reversed;
5. the inverse basis-change layer.

Gate count is ``2·(w-1)`` CNOTs plus at most ``4·w + 1`` single-qubit
gates for a weight-``w`` string — proportional to the Pauli weight, which
is why minimizing weight minimizes circuit cost (Section 2.1.3).
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, cnot, h, rz, s, sdg
from repro.paulis.strings import PauliString


def basis_change_gates(string: PauliString) -> tuple[list[Gate], list[Gate]]:
    """Entry and exit single-qubit layers for diagonalizing ``string``."""
    entry: list[Gate] = []
    exit_: list[Gate] = []
    for qubit in string.support:
        operator = string.operator(qubit)
        if operator == "X":
            entry.append(h(qubit))
            exit_.append(h(qubit))
        elif operator == "Y":
            entry.append(sdg(qubit))
            entry.append(h(qubit))
            exit_.append(h(qubit))
            exit_.append(s(qubit))
    return entry, exit_


def pauli_evolution_circuit(
    string: PauliString,
    angle: float,
    target: int | None = None,
    ladder: Sequence[int] | None = None,
) -> QuantumCircuit:
    """Circuit implementing ``exp(i · angle · string)``.

    Args:
        string: the Pauli string ``P`` (identity yields an empty circuit —
            a global phase).
        angle: the evolution parameter ``λ``.
        target: rotation qubit; defaults to the highest support qubit.
        ladder: order in which the non-target support qubits feed the CNOT
            ladder (parity accumulation commutes, so any order is
            equivalent — hardware-aware callers sort by device distance).
            Defaults to ascending support order.
    """
    circuit = QuantumCircuit(max(string.num_qubits, 1))
    support = string.support
    if not support:
        return circuit

    if target is None:
        target = support[-1]
    elif target not in support:
        raise ValueError(f"target {target} is not in the string support {support}")

    controls = [qubit for qubit in support if qubit != target]
    if ladder is not None:
        if sorted(ladder) != controls:
            raise ValueError(
                f"ladder {list(ladder)} must permute the non-target support "
                f"{controls}"
            )
        controls = list(ladder)

    entry, exit_ = basis_change_gates(string)
    ladder = [cnot(qubit, target) for qubit in controls]

    circuit.extend(entry)
    circuit.extend(ladder)
    circuit.append(rz(target, -2.0 * angle))
    circuit.extend(reversed(ladder))
    circuit.extend(exit_)
    return circuit
