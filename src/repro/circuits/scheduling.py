"""Trotter term scheduling — a Paulihedral-lite ordering pass.

The paper compiles its circuits with Paulihedral, whose key effect at this
scale is ordering Pauli-evolution blocks so that consecutive blocks share
basis-change gates and ladder ends, which the peephole pass then cancels.
This module provides the ordering half: a greedy chain that always appends
the remaining term with the largest *cancellation affinity* to the last
scheduled one.

Affinity between strings counts qubits where both act with the *same*
non-identity operator — exactly the positions whose exit/entry basis gates
(or ladder CNOT endpoints) can annihilate between adjacent blocks.
"""

from __future__ import annotations

from repro.paulis.strings import PauliString
from repro.paulis.terms import PauliSum


def cancellation_affinity(left: PauliString, right: PauliString) -> int:
    """Number of qubits where both strings apply the same non-identity
    operator — an upper bound on the gates the peephole pass can drop at
    the boundary between their evolution blocks."""
    same_x = left.x_mask & right.x_mask
    same_z = left.z_mask & right.z_mask
    # operators equal at a qubit iff both bits match and at least one is set
    equal_mask = ~(left.x_mask ^ right.x_mask) & ~(left.z_mask ^ right.z_mask)
    return (equal_mask & (same_x | same_z)).bit_count()


def greedy_cancellation_order(operator: PauliSum) -> list[PauliString]:
    """Order terms to maximize adjacent cancellation affinity.

    Starts from the lexicographically first string (determinism), then
    repeatedly appends the unscheduled string with the highest affinity to
    the last scheduled one, breaking ties by label.  ``O(k^2)`` in the term
    count — fine for the Hamiltonians at hand.
    """
    remaining = [string for string, _ in operator.sorted_terms() if not string.is_identity]
    if not remaining:
        return []
    ordered = [remaining.pop(0)]
    while remaining:
        last = ordered[-1]
        best_index = max(
            range(len(remaining)),
            key=lambda i: (cancellation_affinity(last, remaining[i]),
                           remaining[i].label()),
        )
        ordered.append(remaining.pop(best_index))
    return ordered
