"""Quantum circuit substrate: gate IR, Pauli-evolution synthesis, Trotter, peephole."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, cnot, h, rz, s, sdg, x, y, z
from repro.circuits.optimizer import cancel_adjacent_gates, optimize_circuit
from repro.circuits.pauli_evolution import basis_change_gates, pauli_evolution_circuit
from repro.circuits.scheduling import cancellation_affinity, greedy_cancellation_order
from repro.circuits.trotter import trotter_circuit

__all__ = [
    "Gate",
    "QuantumCircuit",
    "basis_change_gates",
    "cancel_adjacent_gates",
    "cancellation_affinity",
    "cnot",
    "greedy_cancellation_order",
    "h",
    "optimize_circuit",
    "pauli_evolution_circuit",
    "rz",
    "s",
    "sdg",
    "trotter_circuit",
    "x",
    "y",
    "z",
]
