"""Peephole circuit optimization.

Stands in for the Paulihedral + Qiskit-L3 pipeline of the paper's Table 6:
adjacent inverse gates cancel and adjacent ``RZ`` rotations on one qubit
merge, where "adjacent" means no intervening gate touches the shared
qubits.  Consecutive Pauli-evolution blocks produced by Trotterization
share basis layers and ladder ends, so this pass removes a substantial
fraction of gates — crucially, it is the *same* pass for every encoding,
keeping the Table-6 comparison fair.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, rz

_ANGLE_TOLERANCE = 1e-12


def _merge_rz(first: Gate, second: Gate) -> Gate | None:
    """Combined rotation, or ``None`` when the sum is (mod 4π) an identity."""
    angle = first.parameter + second.parameter
    if math.isclose(math.remainder(angle, 4.0 * math.pi), 0.0, abs_tol=_ANGLE_TOLERANCE):
        return None
    return rz(first.qubits[0], angle)


def cancel_adjacent_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """One forward pass of inverse-cancellation and rotation merging.

    Scans gates left to right keeping an output list; each incoming gate
    looks back for the latest output gate sharing a qubit.  If the pair is
    mutually inverse (or two mergeable ``RZ``) and no gate in between
    touches any of its qubits, the pair is rewritten.
    """
    output: list[Gate] = []
    for gate in circuit:
        qubits = set(gate.qubits)
        blocker = None
        for position in range(len(output) - 1, -1, -1):
            if qubits & set(output[position].qubits):
                blocker = position
                break
        if blocker is not None:
            previous = output[blocker]
            # Only a full qubit-set match is rewritable; partial overlap blocks.
            if set(previous.qubits) == qubits:
                if gate.name == "RZ" and previous.name == "RZ":
                    merged = _merge_rz(previous, gate)
                    output.pop(blocker)
                    if merged is not None:
                        output.insert(blocker, merged)
                    continue
                if gate.is_inverse_of(previous):
                    output.pop(blocker)
                    continue
        output.append(gate)
    return QuantumCircuit(circuit.num_qubits, output)


def optimize_circuit(circuit: QuantumCircuit, max_passes: int = 16) -> QuantumCircuit:
    """Run :func:`cancel_adjacent_gates` to a fixed point."""
    current = circuit
    for _ in range(max_passes):
        optimized = cancel_adjacent_gates(current)
        if len(optimized) == len(current):
            return optimized
        current = optimized
    return current
