"""Parallel solving engine: portfolio SAT racing and batch fan-out.

Three cooperating pieces turn the solver-bound paths of the compiler
concurrent without giving up reproducibility:

* :mod:`repro.parallel.portfolio` — race diversified copies of one
  incremental SAT instance in worker processes, first definitive answer
  wins, with logical-time (conflict-budget) rounds so the winner is
  deterministic rather than an OS-scheduling accident.
* :mod:`repro.parallel.executor` — fan deduplicated batch-compilation
  jobs across a process pool, with a parent-side cache fast path and
  per-job failure isolation.
* :mod:`repro.parallel.events` — the structured progress events both of
  them emit, rendered by the CLI as a live per-job status line.
"""

from repro.parallel.events import (
    BatchFinished,
    BatchStarted,
    JobFinished,
    JobStarted,
    format_event,
)
from repro.parallel.executor import ProcessBatchExecutor
from repro.parallel.portfolio import (
    PortfolioSolver,
    SolverStrategy,
    diversified_strategies,
)

__all__ = [
    "BatchFinished",
    "BatchStarted",
    "JobFinished",
    "JobStarted",
    "PortfolioSolver",
    "ProcessBatchExecutor",
    "SolverStrategy",
    "diversified_strategies",
    "format_event",
]
