"""Structured progress events for batch execution.

Executors report progress by calling an ``on_event`` callback with one of
the small frozen dataclasses below, always from the coordinating (parent)
process and always in a well-defined order per job::

    BatchStarted
    JobStarted(index=i) ... JobFinished(index=i)      # per job, may interleave
    BatchFinished

Consumers that only want a human-readable line can use
:func:`format_event`; the CLI does exactly that to render a live per-job
status line.  Events are plain data so they can be logged, serialized or
asserted on in tests without touching executor internals.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Union


@dataclass(frozen=True)
class BatchStarted:
    """A batch run begins: ``total`` jobs, ``unique`` after deduplication."""

    total: int
    unique: int
    deduplicated: int
    workers: int


@dataclass(frozen=True)
class JobStarted:
    """One unique job was handed to a worker (or the parent fast path)."""

    index: int
    total: int
    label: str
    key: str


@dataclass(frozen=True)
class JobFinished:
    """One unique job finished, in any status (including ``error``)."""

    index: int
    total: int
    label: str
    key: str
    status: str
    elapsed_s: float
    weight: int | None = None
    error: str | None = None


@dataclass(frozen=True)
class BatchFinished:
    """The whole batch is done; ``counts`` maps status to job tally."""

    total: int
    elapsed_s: float
    counts: dict[str, int]


BatchEvent = Union[BatchStarted, JobStarted, JobFinished, BatchFinished]

#: Signature executors accept for progress reporting.
EventCallback = Callable[[BatchEvent], None]


def event_to_dict(event: BatchEvent) -> dict:
    """Plain-data form of an event (``kind`` plus the dataclass fields)."""
    return {"kind": type(event).__name__, **asdict(event)}


def format_event(event: BatchEvent) -> str:
    """One status line per event, as printed by ``repro batch``."""
    if isinstance(event, BatchStarted):
        dedup = f", {event.deduplicated} deduplicated" if event.deduplicated else ""
        return (f"batch: {event.total} jobs ({event.unique} unique{dedup}) "
                f"on {event.workers} worker(s)")
    if isinstance(event, JobStarted):
        return f"[{event.index + 1}/{event.total}] {event.label} ... started"
    if isinstance(event, JobFinished):
        detail = f" weight {event.weight}" if event.weight is not None else ""
        if event.error:
            detail = f" {event.error}"
        return (f"[{event.index + 1}/{event.total}] {event.label} ... "
                f"{event.status}{detail} ({event.elapsed_s:.2f}s)")
    if isinstance(event, BatchFinished):
        parts = ", ".join(
            f"{count} {status}" for status, count in sorted(event.counts.items())
        )
        return f"batch: done in {event.elapsed_s:.2f}s ({parts})"
    raise TypeError(f"not a batch event: {event!r}")
