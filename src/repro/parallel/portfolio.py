"""Portfolio SAT racing: diversified solvers on one instance, first win.

A portfolio runs N copies of the same CNF under differently-tuned CDCL
solvers (branching randomization, restart schedule, phase polarity) in
separate worker processes and takes the first definitive SAT/UNSAT
answer.  Diversification is the whole point: on instances where the
reference heuristic stalls, some other configuration often finishes
quickly, and the portfolio's time-to-solution is the minimum over its
members.

**Determinism.**  A naive race ("whoever answers first on the wall
clock") makes the winning model an OS-scheduling accident.  This runner
races in *logical time* instead: solving proceeds in rounds of a fixed
per-worker conflict budget with a synchronization barrier after each
round, and the winner is the lowest-indexed worker holding a definitive
answer in the earliest such round.  Losing workers are cancelled at that
barrier (they are never issued another round).  Conflict-budgeted rounds
are a deterministic unit of work, so for a fixed worker count the status
*and* the returned model are reproducible run to run, on any machine,
under any scheduler.  Worker 0 always runs the reference configuration —
a one-worker portfolio is exactly the sequential solver.  Across
different worker counts the chosen model may legitimately differ (a
different strategy may answer first), but definitive answers cannot
contradict each other: SAT/UNSAT per instance is objective, so with
enough budget the descent loop's achieved weights and optimality proofs
agree at every width.  Budgets are the caveat — a wider portfolio may
*answer* a call (some member finishes inside the per-member conflict
budget) where a narrower one returns UNKNOWN, and wall-clock budgets
(``time_budget_s``) additionally reintroduce timing dependence in where
the search gives up, exactly as they do for the sequential solver.

Workers hold their solver instance for the lifetime of the portfolio, so
the incremental interface (``solve(assumptions=...)`` per descent rung,
``add_clause`` for repair blocking clauses, ``set_phases`` for warm
starts) carries learned clauses across calls inside every worker, just
like the in-process incremental engine.

The formula a portfolio is built from is whatever the caller hands it:
the incremental descent engine preprocesses the instance first
(:mod:`repro.sat.preprocess`), so the simplification cost is paid once
in the parent and every worker process inherits the smaller formula.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from dataclasses import dataclass

from repro import chaos
from repro.sat.cnf import CnfFormula
from repro.sat.solver import (
    _ACTIVITY_DECAY,
    _RESTART_BASE,
    SAT,
    UNKNOWN,
    UNSAT,
    CdclSolver,
    SolveResult,
    SolverStats,
)

#: Conflicts each worker spends per round between synchronization
#: barriers.  Small enough that cancellation is responsive, large enough
#: that barrier overhead is negligible against Python-solver conflict
#: rates.
DEFAULT_ROUND_CONFLICTS = 2048


@dataclass(frozen=True)
class SolverStrategy:
    """One portfolio member's CDCL tuning.

    ``name`` is purely descriptive.  Building a solver from the default
    strategy (``SolverStrategy.reference()``) yields the exact reference
    configuration of :class:`repro.sat.solver.CdclSolver`.
    """

    name: str = "reference"
    restart_base: int = _RESTART_BASE
    activity_decay: float = _ACTIVITY_DECAY
    phase_default: bool = False
    random_seed: int | None = None
    random_branch_freq: float = 0.0

    @classmethod
    def reference(cls) -> "SolverStrategy":
        return cls()

    def build(
        self,
        formula: CnfFormula,
        seed_phases: dict[int, bool] | None = None,
        proof=None,
        telemetry=None,
    ) -> CdclSolver:
        return CdclSolver(
            formula,
            seed_phases=seed_phases,
            restart_base=self.restart_base,
            activity_decay=self.activity_decay,
            phase_default=self.phase_default,
            random_seed=self.random_seed,
            random_branch_freq=self.random_branch_freq,
            proof=proof,
            telemetry=telemetry,
        )


#: The diversification table: worker ``i > 0`` takes row ``(i - 1) %
#: len``, with the RNG seed offset by ``i`` so equal rows still explore
#: differently.  Worker 0 is always the reference strategy.
_DIVERSIFICATION = (
    # (restart_base, activity_decay, phase_default, random_branch_freq)
    (64, 0.92, True, 0.05),
    (256, 0.98, False, 0.02),
    (32, 0.90, True, 0.10),
    (512, 0.99, False, 0.0),
    (128, 0.95, True, 0.15),
    (96, 0.93, False, 0.07),
)


def diversified_strategies(workers: int) -> list[SolverStrategy]:
    """Deterministic strategy assignment for a ``workers``-wide portfolio."""
    if workers < 1:
        raise ValueError("a portfolio needs at least one worker")
    strategies = [SolverStrategy.reference()]
    for index in range(1, workers):
        base, decay, phase, freq = _DIVERSIFICATION[(index - 1) % len(_DIVERSIFICATION)]
        strategies.append(
            SolverStrategy(
                name=f"diversified-{index}",
                restart_base=base,
                activity_decay=decay,
                phase_default=phase,
                random_seed=0x5EED + index,
                random_branch_freq=freq,
            )
        )
    return strategies


def _worker_main(conn, formula: CnfFormula, strategy: SolverStrategy,
                 seed_phases: dict[int, bool] | None,
                 emit_proof: bool = False,
                 relay_telemetry: bool = False,
                 worker_index: int = 0) -> None:
    """Worker process loop: build one persistent solver, serve commands."""
    try:
        log = None
        if emit_proof:
            from repro.sat.drat import ProofLog

            log = ProofLog()
        telemetry = None
        if relay_telemetry:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        solver = strategy.build(formula, seed_phases=seed_phases, proof=log,
                                telemetry=telemetry)
    except Exception as error:  # pragma: no cover - construction is simple
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        return
    conn.send(("ready",))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent vanished
            return
        command = message[0]
        try:
            if command == "solve":
                _, assumptions, max_conflicts = message
                if telemetry is None:
                    result = solver.solve(
                        max_conflicts=max_conflicts, assumptions=assumptions
                    )
                else:
                    with telemetry.span("portfolio.slice",
                                        worker=worker_index,
                                        strategy=strategy.name) as attrs:
                        result = solver.solve(
                            max_conflicts=max_conflicts,
                            assumptions=assumptions,
                        )
                        attrs.update(status=result.status,
                                     conflicts=result.stats.conflicts)
                # A winner's refutation is only checkable against that
                # worker's own clause-derivation history, so an UNSAT
                # reply ships the full cumulative log.
                proof_payload = None
                if log is not None and result.status == UNSAT:
                    proof_payload = (list(log.lines), list(log.axioms))
                conn.send((
                    "result",
                    result.status,
                    result.model,
                    result.under_assumptions,
                    result.stats,
                    len(solver.learned),
                    proof_payload,
                    None if telemetry is None else telemetry.drain_relay(),
                ))
            elif command == "add":
                solver.add_clause(message[1])
                conn.send(("ok",))
            elif command == "phases":
                solver.set_phases(message[1])
                conn.send(("ok",))
            elif command == "quit":
                conn.close()
                return
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except Exception as error:
            conn.send(("error", f"{type(error).__name__}: {error}"))


class PortfolioSolver:
    """Race diversified solver processes on one incremental SAT instance.

    Drop-in for :class:`repro.sat.solver.CdclSolver` at the surface the
    descent engine uses: ``solve(max_conflicts=..., time_budget_s=...,
    assumptions=...)``, ``add_clause``, ``set_phases`` — plus ``close()``
    to release the worker processes (also a context manager).

    Args:
        formula: the CNF instance; pickled once to each worker.
        workers: portfolio width.  ``1`` runs the reference solver
            in-process (no processes, bit-identical to ``CdclSolver``).
        seed_phases: warm-start phase hints shared by every member.
        strategies: explicit per-worker tunings; defaults to
            :func:`diversified_strategies`.
        round_conflicts: logical round length (see the module docstring).
        proof: optional :class:`repro.sat.drat.ProofLog`.  Lines already
            in the log at construction (the preprocessor's) are treated
            as an immutable prefix; after every UNSAT answer the suffix
            is replaced with the *winning worker's* cumulative solver
            log, so the shared log always describes one coherent
            derivation history — the winner's.
        telemetry: optional :class:`repro.telemetry.Telemetry`.  Each
            worker then runs its own local telemetry, wraps every solve
            slice in a ``portfolio.slice`` span, and ships the drained
            events/metric deltas back with each round's reply; the
            parent absorbs them tagged with the logical round and worker
            index, so merged traces arrive exactly once, in round order.

    If worker processes cannot be spawned at all (restricted sandboxes),
    the portfolio degrades to the in-process reference solver and sets
    ``degraded = True`` — solving never becomes unavailable just because
    ``fork`` is.
    """

    def __init__(
        self,
        formula: CnfFormula,
        workers: int = 2,
        seed_phases: dict[int, bool] | None = None,
        strategies: list[SolverStrategy] | None = None,
        round_conflicts: int = DEFAULT_ROUND_CONFLICTS,
        proof=None,
        telemetry=None,
    ):
        if workers < 1:
            raise ValueError("a portfolio needs at least one worker")
        if round_conflicts < 1:
            raise ValueError("round_conflicts must be positive")
        self.workers = workers
        self.round_conflicts = round_conflicts
        self.telemetry = telemetry
        self._round = 0  # logical rounds issued over the solver's lifetime
        self._proof = proof
        self._proof_line_prefix = 0 if proof is None else len(proof.lines)
        self._proof_axiom_prefix = 0 if proof is None else len(proof.axioms)
        self.strategies = strategies or diversified_strategies(workers)
        if len(self.strategies) != workers:
            raise ValueError(
                f"{workers} workers need {workers} strategies, "
                f"got {len(self.strategies)}"
            )
        self.degraded = False
        self._local: CdclSolver | None = None
        self._processes: list[multiprocessing.Process] = []
        self._pipes: list = []

        if workers == 1:
            self._local = self.strategies[0].build(formula, seed_phases,
                                                   proof=proof,
                                                   telemetry=telemetry)
            return
        try:
            context = multiprocessing.get_context()
            for index, strategy in enumerate(self.strategies):
                # A ChaosFault is a RuntimeError: it walks the same
                # degrade-to-in-process path a real spawn failure takes.
                chaos.inject("worker.spawn", telemetry=telemetry)
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, formula, strategy, seed_phases,
                          proof is not None, telemetry is not None, index),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._pipes.append(parent_conn)
                self._processes.append(process)
            for conn in self._pipes:
                reply = conn.recv()
                if reply[0] != "ready":
                    raise RuntimeError(f"portfolio worker failed to start: {reply}")
        except (OSError, RuntimeError) as error:
            self._teardown()
            warnings.warn(
                f"portfolio could not spawn worker processes ({error}); "
                "falling back to in-process solving",
                RuntimeWarning,
                stacklevel=2,
            )
            self.degraded = True
            self._local = self.strategies[0].build(formula, seed_phases,
                                                   proof=proof,
                                                   telemetry=telemetry)

    # -- lifecycle -------------------------------------------------------------

    def __enter__(self) -> "PortfolioSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        for conn in self._pipes:
            try:
                conn.send(("quit",))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=2.0)
        self._teardown()

    def _teardown(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for conn in self._pipes:
            try:
                conn.close()
            except OSError:
                pass
        self._processes = []
        self._pipes = []

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- broadcast helpers -----------------------------------------------------

    def _broadcast(self, message: tuple) -> list[tuple]:
        replies = []
        for conn in self._pipes:
            conn.send(message)
        for index, conn in enumerate(self._pipes):
            try:
                reply = conn.recv()
            except (EOFError, OSError) as error:
                raise RuntimeError(
                    f"portfolio worker {index} died mid-command"
                ) from error
            if reply[0] == "error":
                raise RuntimeError(f"portfolio worker {index}: {reply[1]}")
            replies.append(reply)
        return replies

    # -- incremental solver surface -------------------------------------------

    def add_clause(self, literals) -> None:
        """Add a clause to every portfolio member (incremental use)."""
        clause = list(literals)
        if self._local is not None:
            self._local.add_clause(clause)
            return
        self._broadcast(("add", clause))

    def set_phases(self, phases: dict[int, bool]) -> None:
        """Install warm-start phase hints in every portfolio member."""
        if self._local is not None:
            self._local.set_phases(phases)
            return
        self._broadcast(("phases", dict(phases)))

    def solve(
        self,
        max_conflicts: int | None = None,
        time_budget_s: float | None = None,
        assumptions: "list[int] | tuple[int, ...] | None" = None,
    ) -> SolveResult:
        """Race the portfolio until a definitive answer or budget exhaustion.

        The conflict budget is per member (as it is for the sequential
        solver); the time budget is checked at round barriers, so the
        overshoot is at most one round.  Statistics aggregate the whole
        portfolio's effort; ``elapsed_s`` is wall-clock.
        """
        if self._local is not None:
            return self._local.solve(
                max_conflicts=max_conflicts,
                time_budget_s=time_budget_s,
                assumptions=assumptions,
            )

        start = time.monotonic()
        deadline = None if time_budget_s is None else start + time_budget_s
        assumptions = tuple(assumptions or ())
        spent = 0  # per-member conflicts issued so far
        total = SolverStats()

        while True:
            slice_budget = self.round_conflicts
            if max_conflicts is not None:
                slice_budget = min(slice_budget, max_conflicts - spent)
                if slice_budget <= 0:
                    break
            logical_round = self._round
            self._round += 1
            replies = self._broadcast(("solve", assumptions, slice_budget))
            spent += slice_budget
            winner = None
            for index, reply in enumerate(replies):
                (_, status, model, under_assumptions, stats, learned,
                 proof_payload, tele_payload) = reply
                total = total + stats
                if self.telemetry is not None and tele_payload:
                    # Round-major, worker-minor absorption order: merged
                    # events land exactly once, ordered by logical round.
                    self.telemetry.absorb_relay(
                        tele_payload,
                        extra={"round": logical_round, "worker": index},
                    )
                if winner is None and status in (SAT, UNSAT):
                    winner = (index, status, model, under_assumptions, learned,
                              proof_payload)
            if winner is not None:
                (index, status, model, under_assumptions, winner_learned,
                 proof_payload) = winner
                if self._proof is not None and proof_payload is not None:
                    # Splice the winner's cumulative solver log in after
                    # the immutable (preprocessor) prefix; repeated UNSAT
                    # answers keep overwriting with the latest winner's
                    # complete history.
                    winner_lines, winner_axioms = proof_payload
                    del self._proof.lines[self._proof_line_prefix:]
                    self._proof.lines.extend(
                        (tag, tuple(lits)) for tag, lits in winner_lines
                    )
                    del self._proof.axioms[self._proof_axiom_prefix:]
                    self._proof.axioms.extend(
                        tuple(clause) for clause in winner_axioms
                    )
                return SolveResult(
                    status=status,
                    model=model,
                    stats=total,
                    elapsed_s=time.monotonic() - start,
                    under_assumptions=under_assumptions,
                    learned_clauses=winner_learned,
                )
            if deadline is not None and time.monotonic() > deadline:
                break

        return SolveResult(
            status=UNKNOWN,
            model=None,
            stats=total,
            elapsed_s=time.monotonic() - start,
        )
