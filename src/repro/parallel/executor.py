"""Process-pool batch executor with fingerprint-aware scheduling.

:class:`ProcessBatchExecutor` runs *unique* compilation jobs — the batch
front-end (:class:`repro.store.batch.BatchCompiler`) has already
fingerprinted and deduplicated them — across a pool of worker processes.
Scheduling is fingerprint-aware in two places:

* **parent-side cache fast path** — before a job is dispatched at all,
  the parent consults the shared :class:`~repro.store.cache
  .CompilationCache`; a final cached result becomes a ``cache-hit``
  outcome with zero processes involved, so a warm batch costs one JSON
  read per job;
* **worker-side warm start** — dispatched jobs run a cache-enabled
  :class:`~repro.core.pipeline.FermihedralCompiler` against the same
  cache directory, so unproved entries still seed the descent.

Failures are isolated per job: an exception inside a worker comes back as
an ``error`` outcome for that key and the rest of the batch proceeds.  A
hard worker crash (the pool breaking) errors only the jobs that were
still in flight.

Progress is reported through :mod:`repro.parallel.events` callbacks, in
the parent, as futures resolve.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

from repro import chaos
from repro.core.config import FermihedralConfig
from repro.core.pipeline import FermihedralCompiler
from repro.hardware import resolve_device
from repro.parallel.events import EventCallback, JobFinished, JobStarted
from repro.store.batch import CompileJob, JobOutcome, run_compile_job
from repro.store.cache import CompilationCache


def _compile_in_worker(
    job: CompileJob,
    key: str,
    config: FermihedralConfig,
    cache_root: str | None,
    relay_telemetry: bool = False,
    progress_path: str | None = None,
) -> JobOutcome:
    """Worker-process body: reopen the cache by directory, then run the
    same :func:`repro.store.batch.run_compile_job` the thread pool uses
    (exceptions already folded into an ``error`` outcome there).  The
    outcome travels back to the parent by pickle, like any pool return
    value.

    With ``relay_telemetry`` the job records into a worker-local
    :class:`~repro.telemetry.Telemetry` whose drained contents ride home
    on :attr:`JobOutcome.telemetry` — spans and metric deltas cross the
    process boundary as plain data, and the parent merges them exactly
    once.  ``progress_path`` additionally mirrors the job's live
    progress snapshot into a JSON file the parent can read *while the
    job runs* — the result pipe only speaks at completion."""
    cache = CompilationCache(cache_root) if cache_root else None
    telemetry = None
    if relay_telemetry:
        from repro.telemetry import FileSnapshotSink, Telemetry

        telemetry = Telemetry()
        if progress_path:
            telemetry.progress.add_sink(FileSnapshotSink(progress_path))
    outcome = run_compile_job(job, config, cache, key, telemetry=telemetry)
    if telemetry is not None:
        outcome.telemetry = telemetry.drain_relay()
    return outcome


class ProcessBatchExecutor:
    """Fan unique ``(key, job)`` pairs across worker processes.

    Args:
        jobs: worker-process count (must be >= 1; ``1`` still uses a
            single-process pool, which keeps the execution path uniform).
        cache: shared compilation cache; enables the parent fast path and
            worker-side persistence.  Workers reopen it by directory, so
            the cache object itself never crosses the process boundary.
        default_config: config for jobs that carry none.
        on_event: :mod:`repro.parallel.events` callback.
        on_outcome: called with each :class:`~repro.store.batch.JobOutcome`
            in the parent as soon as its job resolves (fast path included),
            before the matching ``JobFinished`` event.  Events carry only
            display data; this hook hands the full outcome — result object
            and all — to callers that track per-job state incrementally,
            the way the service daemon feeds its job queue.
        telemetry: a :class:`repro.telemetry.Telemetry` handle.  Worker
            processes then record into their own handle and the executor
            absorbs each job's relay payload (spans tagged with the job
            label, metric deltas merged additively) into this one as the
            outcome arrives — before ``on_outcome`` runs, which still
            sees the raw payload on :attr:`~repro.store.batch.JobOutcome
            .telemetry` for per-job trace storage.
        progress_dir: directory for per-job live progress snapshot files
            (one ``<key>.json`` per in-flight job, atomically replaced
            by the worker, removed by the parent when the job resolves).
            Only meaningful with ``telemetry``; the service daemon reads
            these for ``GET /jobs/<id>/progress`` on running jobs.

    By default every :meth:`run` call creates and tears down its own
    pool — the right shape for a one-shot batch.  Long-lived callers
    (the service daemon drains its queue through one executor for its
    whole lifetime) use the executor as a context manager instead::

        with ProcessBatchExecutor(jobs=4, cache=cache) as executor:
            executor.run(first_batch)
            executor.run(second_batch)   # same worker processes

    which keeps one persistent pool across ``run`` calls.  A pool broken
    by a hard worker crash is replaced on the next ``run``, so one
    crashed job never poisons the executor for the batches after it.
    On a persistent pool, concurrent ``run`` calls from different
    threads are safe — the service daemon issues one ``run`` per job
    slot so a slow job never blocks the others' dispatch.
    """

    def __init__(
        self,
        jobs: int = 2,
        cache: CompilationCache | None = None,
        default_config: FermihedralConfig | None = None,
        on_event: EventCallback | None = None,
        on_outcome=None,
        telemetry=None,
        progress_dir: str | None = None,
    ):
        if jobs < 1:
            raise ValueError("executor needs at least one worker process")
        self.jobs = jobs
        self.cache = cache
        self.default_config = default_config or FermihedralConfig()
        self.on_event = on_event
        self.on_outcome = on_outcome
        self.telemetry = telemetry
        self.progress_dir = progress_dir
        if cache is not None and telemetry is not None:
            cache.set_telemetry(telemetry)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False
        #: Serializes broken-pool replacement: concurrent run() calls on
        #: one persistent pool (the service dispatches one run per job)
        #: must not both swap the pool in.
        self._pool_guard = threading.Lock()

    # -- persistent-pool lifecycle --------------------------------------------

    def _make_pool(self, max_workers: int) -> ProcessPoolExecutor:
        # fork shares the already-imported interpreter image with the
        # workers; where unavailable (non-POSIX), the default start
        # method still works, just with a slower cold start.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)

    def __enter__(self) -> "ProcessBatchExecutor":
        with self._pool_guard:
            self._pool = self._make_pool(self.jobs)
            self._pool_broken = False
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the persistent pool down (no-op outside a ``with`` block)."""
        with self._pool_guard:
            pool, self._pool = self._pool, None
        if pool is not None:
            # shutdown() waits for in-flight futures; do it outside the
            # guard so a concurrent run() marking the pool broken is
            # never blocked behind the drain.
            pool.shutdown()

    def _emit(self, event) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def _deliver(self, outcome: JobOutcome) -> None:
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    def _job_config(self, job: CompileJob) -> FermihedralConfig:
        return job.config or self.default_config

    def progress_path(self, key: str) -> str | None:
        """The live snapshot file the worker for ``key`` mirrors into
        (``None`` when progress mirroring is off)."""
        if self.progress_dir is None or self.telemetry is None:
            return None
        return str(Path(self.progress_dir) / f"{key}.json")

    def _parent_fast_path(self, job: CompileJob, key: str) -> JobOutcome | None:
        """A final cached result short-circuits dispatch entirely."""
        if self.cache is None:
            return None
        started = time.monotonic()
        cached = self.cache.get(key)
        if cached is None:
            return None
        topology = resolve_device(job.device)
        if not FermihedralCompiler._is_final(cached, job.method, topology):
            return None  # worker will warm-start from it instead
        return JobOutcome(
            job=job,
            key=key,
            status="cache-hit",
            result=cached,
            elapsed_s=time.monotonic() - started,
        )

    def run(self, work: list[tuple[str, CompileJob]]) -> dict[str, JobOutcome]:
        """Execute unique jobs; returns outcomes by fingerprint key.

        ``work`` must already be deduplicated (one entry per key); the
        executor asserts nothing about ordering and reports completion in
        whatever order workers finish.
        """
        total = len(work)
        outcomes: dict[str, JobOutcome] = {}
        pending: list[tuple[int, str, CompileJob]] = []

        for index, (key, job) in enumerate(work):
            fast = self._parent_fast_path(job, key)
            if fast is not None:
                outcomes[key] = fast
                self._deliver(fast)
                self._emit(JobStarted(index, total, job.display, key))
                self._emit(JobFinished(
                    index, total, job.display, key, fast.status,
                    fast.elapsed_s,
                    weight=None if fast.result is None else fast.result.weight,
                ))
            else:
                pending.append((index, key, job))

        if not pending:
            return outcomes

        if self._pool is not None:
            with self._pool_guard:
                if self._pool_broken:
                    # Replace a pool a previous run's hard crash broke.
                    self._pool.shutdown()
                    self._pool = self._make_pool(self.jobs)
                    self._pool_broken = False
                pool = self._pool
            self._dispatch(pool, pending, total, outcomes)
        else:
            with self._make_pool(min(self.jobs, len(pending))) as pool:
                self._dispatch(pool, pending, total, outcomes)
        return outcomes

    def _dispatch(
        self,
        pool: ProcessPoolExecutor,
        pending: list[tuple[int, str, CompileJob]],
        total: int,
        outcomes: dict[str, JobOutcome],
    ) -> None:
        """Run the non-fast-path jobs on ``pool``, folding every failure —
        a job exception, an unpicklable result, the pool itself breaking —
        into per-key ``error`` outcomes."""
        cache_root = None if self.cache is None else str(Path(self.cache.root))
        futures = {}
        for index, key, job in pending:
            self._emit(JobStarted(index, total, job.display, key))
            try:
                chaos.inject("worker.spawn", telemetry=self.telemetry)
                future = pool.submit(
                    _compile_in_worker, job, key, self._job_config(job), cache_root,
                    self.telemetry is not None,
                    self.progress_path(key),
                )
            except Exception as crash:  # pool already broken / shut down
                with self._pool_guard:
                    self._pool_broken = True
                outcome = JobOutcome(
                    job=job,
                    key=key,
                    status="error",
                    error=f"{type(crash).__name__}: {crash}",
                    # Spawn failures are infrastructure, not the job: the
                    # next attempt gets a fresh pool.
                    retryable=True,
                )
                outcomes[key] = outcome
                self._deliver(outcome)
                self._emit(JobFinished(
                    index, total, job.display, key, outcome.status, 0.0,
                    error=outcome.error,
                ))
                continue
            futures[future] = (index, key, job)

        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for future in done:
                index, key, job = futures[future]
                try:
                    outcome = future.result()
                except Exception as crash:  # pool broke / unpicklable result
                    if isinstance(crash, BrokenProcessPool):
                        with self._pool_guard:
                            self._pool_broken = True
                    outcome = JobOutcome(
                        job=job,
                        key=key,
                        status="error",
                        error=f"{type(crash).__name__}: {crash}",
                        # A killed worker (broken pool) is worth retrying —
                        # the replacement pool plus the descent checkpoint
                        # make the next attempt cheap.  An unpicklable
                        # result is deterministic; retrying repeats it.
                        retryable=isinstance(crash, BrokenProcessPool),
                    )
                if self.telemetry is not None and outcome.telemetry:
                    # Merge the worker's spans and metric deltas into the
                    # parent handle exactly once; the raw payload stays on
                    # the outcome for per-job trace consumers (the service
                    # daemon's /debug/trace endpoint).
                    self.telemetry.absorb_relay(
                        outcome.telemetry, extra={"job": job.display}
                    )
                snapshot_path = self.progress_path(key)
                if snapshot_path is not None:
                    # The job is over; the relay above carried its final
                    # progress events, so the live file is now stale.
                    try:
                        os.unlink(snapshot_path)
                    except OSError:
                        pass
                outcomes[key] = outcome
                self._deliver(outcome)
                self._emit(JobFinished(
                    index, total, job.display, key, outcome.status,
                    outcome.elapsed_s,
                    weight=None if outcome.result is None
                    else outcome.result.weight,
                    error=outcome.error,
                ))
