"""Command-line interface to the Fermihedral compiler.

Subcommands::

    python -m repro solve     --modes 3 [--model hubbard:3] [--cache DIR]
                              [--device grid-3x3] [--portfolio 4] [--stats]
                              [--trace FILE.jsonl]
    python -m repro baselines --modes 4 [--model h2]
    python -m repro compile   --model h2 --encoding bk [--time 1.0]
                              [--device ibm-falcon-27]
    python -m repro verify    --encoding-file enc.json
    python -m repro verify-proof ARTIFACT [--dir DIR]
    python -m repro lint      [PATH ...] [--json|--sarif] [--explain RULE]
    python -m repro batch     jobs.json [--model h2 ...] [--cache DIR]
                              [--device linear-8] [--jobs 4]
    python -m repro cache     {ls,show,gc} [--dir DIR]
    python -m repro devices   {ls,show NAME}
    python -m repro trace     show FILE.jsonl
    python -m repro serve     [--port 8765] [--cache DIR] [--jobs 4]
    python -m repro submit    --model h2 [--wait] [--url URL]
    python -m repro jobs      {ls,show ID,proof ID,forensics ID} [--url URL]
    python -m repro top       [--once] [--interval 2.0] [--url URL]
    python -m repro watch     JOB_ID [--url URL]
    python -m repro shutdown  [--no-drain] [--url URL]
    python -m repro bench     {record,compare} --json-dir DIR

The service verbs talk to a ``repro serve`` daemon: a JSON-over-HTTP
job queue that deduplicates submissions by fingerprint, answers
cache hits synchronously, and fans the rest across worker processes.
``--url`` defaults to ``$REPRO_SERVICE_URL`` or
``http://127.0.0.1:8765``.

Parallelism: ``--portfolio N`` races N diversified solver processes on
every SAT call (deterministic logical-time racing; first definitive
answer wins); ``batch --jobs N`` fans unique jobs across N worker
processes with a parent-side cache fast path and a live per-job status
line on stderr.  SAT instances are simplified before solving
(``--no-preprocess`` opts out), ``solve --profile`` wraps the whole
pipeline in cProfile, and ``solve --proof`` captures a DRAT certificate
of the optimality-proving UNSAT answer that ``repro verify-proof``
re-checks independently.  ``solve --trace FILE.jsonl`` records the span
tree of the whole compile (compile → descent → rung → solve) as JSONL
that ``repro trace show`` renders; a running service additionally
exposes ``GET /metrics`` (Prometheus text) and ``GET /debug/trace/<id>``,
and ``repro jobs proof ID`` fetches a served proof and re-checks it
client-side.

Observability: ``repro top`` is a live ops console over a running
service (queue depth, worker slots, cache hit ratio, latency quantiles,
per-active-job bound and conflict rate), ``repro watch ID`` follows one
job's progress stream to completion, ``repro jobs forensics ID``
retrieves the flight-recorder dump of a failed job (breadcrumbs, open
spans, metrics, traceback), and ``repro bench record/compare`` keeps an
append-only perf-history ledger that flags >10% regressions between
commits.  Given enough budget per SAT call, none of these
knobs changes
achieved weights or optimality proofs — only wall-clock time.  When a
budget *is* exhausted, more parallelism can only answer more (a
diversified racer may finish a bound the reference solver could not),
never contradict a serial answer.

Model specs: ``h2``, ``hubbard:<sites>``, ``hubbard:<rows>x<cols>``,
``syk:<modes>``, ``electronic:<modes>``, ``tv:<sites>``.

Device specs: registry presets (``repro devices ls``) or parametric
layouts — ``linear-<n>``, ``ring-<n>``, ``grid-<r>x<c>``,
``heavy-hex-<r>x<c>``, ``all-to-all-<n>``.  A device switches solving to
hardware-aware mode: connectivity-weighted SAT objective, routed-cost
candidate selection, per-device cache keys, and routed gate counts in the
output.

The ``cache`` directory defaults to ``$REPRO_CACHE_DIR`` or
``~/.cache/fermihedral`` for the ``cache`` subcommand; ``solve`` and
``batch`` only persist when ``--cache`` is passed explicitly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.tables import format_table
from repro.circuits import greedy_cancellation_order, optimize_circuit, trotter_circuit
from repro.core import (
    METHOD_ANNEALING,
    METHOD_FULL_SAT,
    METHOD_INDEPENDENT,
    FermihedralCompiler,
    FermihedralConfig,
    SolverBudget,
    verify_encoding,
)
from repro.encodings import (
    bravyi_kitaev,
    jordan_wigner,
    parity_encoding,
    random_encoding,
    ternary_tree,
)
from repro.encodings.serialization import load_encoding, save_encoding
from repro.fermion.catalog import MODEL_SPEC_HELP, parse_model
from repro.hardware import (
    HardwareCostModel,
    connectivity_weights,
    device_spec_help,
    get_device,
    list_devices,
)
from repro.store import (
    BatchCompiler,
    CompilationCache,
    CompileJob,
    default_cache_dir,
    job_from_spec,
)

_BASELINE_BUILDERS = {
    "jw": jordan_wigner,
    "bk": bravyi_kitaev,
    "parity": parity_encoding,
    "tt": ternary_tree,
}

_MODEL_HELP = MODEL_SPEC_HELP


def _config_from_args(args) -> FermihedralConfig:
    return FermihedralConfig(
        algebraic_independence=not args.no_alg,
        vacuum_preservation=not args.no_vacuum,
        exact_vacuum=args.exact_vacuum,
        strategy=args.strategy,
        budget=SolverBudget(
            max_conflicts=args.max_conflicts, time_budget_s=args.budget_s
        ),
        incremental=not args.no_incremental,
        portfolio=args.portfolio or 1,
        jobs=getattr(args, "jobs_n", None) or 1,
        preprocess=not args.no_preprocess,
        proof=getattr(args, "proof", False),
        deadline_s=getattr(args, "deadline", None),
    )


def _add_solver_options(parser: argparse.ArgumentParser) -> None:
    """Constraint/budget flags shared by ``solve`` and ``batch``."""
    parser.add_argument("--no-alg", action="store_true",
                        help="drop the algebraic-independence clauses and "
                             "rank-check models instead (paper Section 4.1)")
    parser.add_argument("--no-vacuum", action="store_true",
                        help="drop the vacuum-preservation clauses")
    parser.add_argument("--exact-vacuum", action="store_true",
                        help="use the exact vacuum constraint instead of the "
                             "paper's sufficient condition")
    parser.add_argument("--strategy", choices=("linear", "bisection"),
                        default="linear",
                        help="descent loop: the paper's Algorithm 1 (linear) "
                             "or binary search (bisection)")
    parser.add_argument("--budget-s", type=float, default=60.0, metavar="SECONDS",
                        help="time budget per SAT call (default: 60)")
    parser.add_argument("--max-conflicts", type=int, default=None, metavar="N",
                        help="conflict budget per SAT call (default: unlimited)")
    parser.add_argument("--portfolio", type=int, default=None, metavar="N",
                        help="race N diversified solver processes on every "
                             "SAT call; deterministic first-answer-wins "
                             "(default: 1, in-process)")
    parser.add_argument("--no-incremental", action="store_true",
                        help="rebuild the SAT instance at every descent "
                             "bound instead of reusing one incremental "
                             "instance with assumption-activated bounds "
                             "(ignored with --portfolio > 1, which always "
                             "races one persistent instance)")
    parser.add_argument("--no-preprocess", action="store_true",
                        help="solve the raw CNF instead of simplifying it "
                             "first (unit propagation, subsumption, bounded "
                             "variable elimination); identical results, "
                             "usually slower")
    parser.add_argument("--proof", action="store_true",
                        help="capture a DRAT certificate of the descent's "
                             "final UNSAT answer (the optimality proof), "
                             "re-checkable with 'repro verify-proof'")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="whole-job wall-clock deadline; on expiry the "
                             "best encoding found so far is returned marked "
                             "degraded instead of failing (execution-only: "
                             "does not change the cache fingerprint)")


def _resolve_encoding(name: str, num_modes: int):
    if name in _BASELINE_BUILDERS:
        return _BASELINE_BUILDERS[name](num_modes)
    if name.startswith("random"):
        _, _, seed = name.partition(":")
        return random_encoding(num_modes, seed=int(seed or 0))
    return load_encoding(name)


def _print_result_summary(result, mid_lines: tuple[str, ...] = (),
                          post_lines: tuple[str, ...] = ()) -> None:
    """The shared ``solve`` / ``cache show`` result block.

    ``mid_lines`` print between the headline fields and the solver stats;
    ``post_lines`` print after the stats, before the Majorana strings.
    """
    print(f"method:          {result.method}")
    print(f"weight:          {result.weight}")
    print(f"proved optimal:  {result.proved_optimal}")
    for line in mid_lines:
        print(line)
    print(f"SAT calls:       {result.descent.sat_calls}"
          f" (solve {result.descent.solve_time_s:.2f}s)")
    if result.annealing is not None:
        print(f"annealing:       {result.annealing.initial_weight} -> "
              f"{result.annealing.weight} "
              f"({result.annealing.accepted_moves} accepted moves)")
    if result.hardware is not None:
        hardware = result.hardware
        print(f"device:          {result.device} "
              f"({hardware.num_physical_qubits} qubits)")
        print(f"routed 2q gates: {hardware.two_qubit_count} "
              f"({hardware.swap_count} swaps, "
              f"+{hardware.routing_overhead} over logical)")
        print(f"routed depth:    {hardware.depth} "
              f"(logical {hardware.logical_depth})")
    for line in post_lines:
        print(line)
    print("majorana strings:")
    for index, string in enumerate(result.encoding.strings):
        print(f"  m_{index:<3d} {string.label()}")


def _print_solver_stats(result) -> None:
    """The ``solve --stats`` block: search effort per descent step."""
    descent = result.descent
    print("solver statistics:")
    print(f"  conflicts:     {descent.total_conflicts}")
    print(f"  decisions:     {descent.total_decisions}")
    print(f"  propagations:  {descent.total_propagations}")
    print(f"  restarts:      {descent.total_restarts}")
    print(f"  construct:     {descent.construct_time_s:.2f}s")
    if descent.preprocess_time_s:
        print(f"  preprocess:    {descent.preprocess_time_s:.2f}s")
    rows = [
        [step.bound, step.status,
         "-" if step.achieved_weight is None else step.achieved_weight,
         step.conflicts, step.decisions, step.propagations, step.restarts,
         f"{step.elapsed_s:.2f}"]
        for step in descent.steps
    ]
    if rows:
        print(format_table(
            ["bound", "status", "achieved", "conflicts", "decisions",
             "propagations", "restarts", "time (s)"],
            rows,
        ))


def _profiled(run):
    """Run ``run()`` under cProfile; returns (result, top-20 stats text)."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        value = run()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(20)
    return value, buffer.getvalue()


def cmd_solve(args) -> int:
    config = _config_from_args(args)
    # --jobs is an alias for --portfolio; an explicit --portfolio (even
    # --portfolio 1) always wins.
    if args.jobs and args.jobs > 1 and args.portfolio is None:
        config = config.with_parallelism(portfolio=args.jobs)
    # --proof-out implies --proof: asking for the artifact is asking for
    # the capture.
    if args.proof_out:
        config = config.with_parallelism(proof=True)
    cache = CompilationCache(args.cache) if args.cache else None
    telemetry = None
    if args.trace:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    if args.model:
        hamiltonian = parse_model(args.model)
        if args.modes and args.modes != hamiltonian.num_modes:
            print(f"error: model has {hamiltonian.num_modes} modes, --modes says "
                  f"{args.modes}", file=sys.stderr)
            return 2
        method = METHOD_ANNEALING if args.method == "sat-anl" else METHOD_FULL_SAT
        compiler = FermihedralCompiler(hamiltonian.num_modes, config, cache=cache,
                                       device=args.device, telemetry=telemetry)
        run = lambda: compiler.compile(method=method, hamiltonian=hamiltonian)  # noqa: E731
    else:
        if not args.modes:
            print("error: --modes or --model is required", file=sys.stderr)
            return 2
        compiler = FermihedralCompiler(args.modes, config, cache=cache,
                                       device=args.device, telemetry=telemetry)
        run = lambda: compiler.compile(method=METHOD_INDEPENDENT)  # noqa: E731

    if args.profile:
        result, profile_text = _profiled(run)
    else:
        result, profile_text = run(), None

    report = result.verify()
    post = []
    if result.degraded:
        target = result.descent.target_bound
        post.append(
            "degraded:        deadline expired mid-descent; best-so-far "
            f"weight {result.weight}"
            + ("" if target is None else f" (next target bound was {target})")
        )
    if cache is not None:
        post.append(f"cache:           {compiler.last_cache_status} ({args.cache})")
    if result.proof is not None:
        post.append(f"proof:           sha256 {result.proof['sha256'][:12]} "
                    f"({result.proof['drat_lines']} DRAT lines, "
                    f"bound {result.proof['bound']})")
    elif config.proof:
        if compiler.last_cache_status == "hit":
            reason = "the cached result was computed without --proof"
        else:
            reason = "the descent never proved UNSAT"
        post.append(f"proof:           not captured ({reason})")
    _print_result_summary(
        result,
        mid_lines=(
            f"valid:           {report.valid}",
            f"vacuum:          {report.vacuum_preservation}",
        ),
        post_lines=tuple(post),
    )
    if args.stats:
        _print_solver_stats(result)
    if profile_text is not None:
        print("profile (top 20 by cumulative time):")
        print(profile_text, end="")
    if args.output:
        save_encoding(result.encoding, args.output)
        print(f"saved encoding to {args.output}")
    if telemetry is not None:
        from repro.telemetry import write_jsonl

        events = telemetry.tracer.events()
        write_jsonl(events, args.trace)
        print(f"saved trace to {args.trace} ({len(events)} spans; "
              f"render with 'repro trace show {args.trace}')")
    if result.proof is not None:
        trace = getattr(result.descent, "proof_trace", None)
        if trace is None and cache is not None:
            # Cache hit: the trace lives in the cache's proofs/ directory.
            trace = cache.get_proof(result.proof["sha256"])
        artifact = result.proof.get("artifact")
        if args.proof_out or artifact is None:
            out = args.proof_out or f"proof-{result.proof['sha256'][:12]}.json"
            if trace is None:
                print("error: the proof trace is not available to write "
                      "(cached metadata without a stored artifact)",
                      file=sys.stderr)
                return 1
            _write_proof_artifact(trace, out)
            print(f"saved proof to {out}")
        else:
            print(f"proof artifact:  {artifact}")
    return 0


def cmd_baselines(args) -> int:
    hamiltonian = parse_model(args.model) if args.model else None
    num_modes = hamiltonian.num_modes if hamiltonian else args.modes
    if not num_modes:
        print("error: --modes or --model is required", file=sys.stderr)
        return 2
    rows = []
    for name, builder in _BASELINE_BUILDERS.items():
        encoding = builder(num_modes)
        cells = [name, encoding.total_majorana_weight]
        if hamiltonian is not None:
            cells.append(encoding.hamiltonian_pauli_weight(hamiltonian))
        rows.append(cells)
    headers = ["encoding", "majorana weight"]
    if hamiltonian is not None:
        headers.append(f"H weight ({hamiltonian.name})")
    print(format_table(headers, rows))
    return 0


def cmd_compile(args) -> int:
    hamiltonian = parse_model(args.model)
    encoding = _resolve_encoding(args.encoding, hamiltonian.num_modes)
    operator = encoding.encode(hamiltonian).without_identity().hermitian_part()
    order = greedy_cancellation_order(operator)
    circuit = optimize_circuit(
        trotter_circuit(operator, time=args.time, steps=args.steps, term_order=order)
    )
    stats = circuit.gate_statistics()
    print(f"model:     {hamiltonian.name} ({hamiltonian.num_modes} modes)")
    print(f"encoding:  {encoding.name}")
    print(f"H weight:  {encoding.hamiltonian_pauli_weight(hamiltonian)}")
    print(f"terms:     {len(operator)}")
    print(f"gates:     single={stats['single']} cnot={stats['cnot']} "
          f"total={stats['total']} depth={stats['depth']}")
    if args.device:
        topology = get_device(args.device)
        cost = HardwareCostModel(topology, evolution_time=args.time).cost_of_encoding(
            encoding, hamiltonian
        )
        print(f"device:    {topology.name} ({topology.num_qubits} qubits)")
        print(f"routed:    cnot={cost.two_qubit_count} swaps={cost.swap_count} "
              f"depth={cost.depth} (+{cost.routing_overhead} cnot over logical)")
    return 0


def _write_proof_artifact(trace, path: str | Path) -> None:
    """Write a proof trace exactly as the cache stores it (canonical JSON),
    so the file's sha256 discipline matches ``verify-proof``'s."""
    Path(path).write_text(json.dumps(trace.to_dict(), sort_keys=True) + "\n")


def cmd_verify_proof(args) -> int:
    from repro.sat.drat import ProofTrace, check_trace

    path = Path(args.artifact)
    if path.exists():
        trace = ProofTrace.from_dict(json.loads(path.read_text()))
        source = str(path)
        # Content-addressed file names double as integrity checks.
        stem = path.stem
        if len(stem) == 64 and all(c in "0123456789abcdef" for c in stem) \
                and trace.sha256() != stem:
            print(f"artifact:        {source}")
            print("verdict:         FAILED (content does not match the "
                  "artifact's content address)")
            return 1
    else:
        cache = CompilationCache(args.dir)
        matches = [sha for sha in cache.proof_shas()
                   if sha.startswith(args.artifact)]
        if not matches:
            print(f"error: no file or cached proof matches {args.artifact!r}",
                  file=sys.stderr)
            return 2
        if len(matches) > 1:
            print(f"error: {args.artifact!r} is ambiguous "
                  f"({len(matches)} proofs):", file=sys.stderr)
            for sha in matches:
                print(f"  {sha}", file=sys.stderr)
            return 2
        trace = cache.get_proof(matches[0])
        source = str(cache.proof_path(matches[0]))
        if trace is None:
            print(f"artifact:        {source}")
            print("verdict:         FAILED (artifact is corrupted or "
                  "unreadable)")
            return 1
    print(f"artifact:        {source}")
    print(f"sha256:          {trace.sha256()}")
    print(f"variables:       {trace.num_variables}")
    print(f"assumptions:     {len(trace.assumptions)}")
    print(f"axioms:          {len(trace.axioms)}")
    print(f"proof lines:     {trace.num_proof_lines}")
    for key in ("bound", "engine"):
        if key in trace.meta:
            print(f"{key + ':':<17}{trace.meta[key]}")
    verdict = check_trace(trace)
    if verdict.ok:
        print(f"verdict:         OK ({verdict.checked_additions} additions "
              f"checked in {verdict.steps} steps)")
        return 0
    print(f"verdict:         FAILED ({verdict.reason})")
    return 1


def cmd_trace_show(args) -> int:
    from repro.telemetry import read_jsonl, render_tree

    events = read_jsonl(args.file)
    print(render_tree(events))
    return 0


def cmd_lint(args) -> int:
    from repro.lint import (
        baseline_dict,
        explain_rule,
        load_baseline,
        run_lint,
    )

    if args.explain is not None:
        print(explain_rule(args.explain))
        return 0
    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    baseline = load_baseline(args.baseline) if args.baseline else None
    rules = None
    if args.rules:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]
    report = run_lint(paths, rules=rules, baseline=baseline)
    if args.write_baseline:
        Path(args.write_baseline).write_text(
            json.dumps(baseline_dict(report), indent=2) + "\n")
        print(f"baseline with {len(report.findings)} entries written to "
              f"{args.write_baseline}")
        return 0
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    elif args.sarif:
        print(json.dumps(report.to_sarif(), indent=2))
    else:
        print(report.to_text())
    for entry in report.stale_baseline:
        print(f"warning: stale baseline entry "
              f"{entry.get('rule')}:{entry.get('path')} no longer matches "
              "anything — prune it", file=sys.stderr)
    return report.exit_code


def cmd_verify(args) -> int:
    encoding = load_encoding(args.encoding_file, validate=False)
    report = verify_encoding(encoding)
    print(f"strings:                 {len(encoding.strings)} "
          f"({encoding.num_modes} modes)")
    print(f"anticommutativity:       {report.anticommutativity}")
    print(f"algebraic independence:  {report.algebraic_independence}")
    print(f"vacuum preservation:     {report.vacuum_preservation}")
    for violation in report.violations:
        print(f"  violation: {violation}")
    return 0 if report.valid else 1


# -- batch -------------------------------------------------------------------


def _jobs_from_args(args, base_config: FermihedralConfig) -> list[CompileJob]:
    specs: list[dict] = []
    if args.jobs:
        text = sys.stdin.read() if args.jobs == "-" else Path(args.jobs).read_text()
        data = json.loads(text)
        if not isinstance(data, list):
            raise ValueError("the jobs file must hold a JSON list of job objects")
        specs.extend(data)
    specs.extend({"model": model, "method": args.method} for model in args.model)
    if not specs:
        raise ValueError("no jobs: pass a jobs file and/or --model")
    return [
        job_from_spec(
            spec,
            default_method=args.method,
            default_device=args.device,
            base_config=base_config,
        )
        for spec in specs
    ]


def cmd_batch(args) -> int:
    from repro.parallel.events import format_event

    default_config = _config_from_args(args)
    jobs = _jobs_from_args(args, default_config)
    cache = CompilationCache(args.cache) if args.cache else None

    def live_status(event) -> None:
        # Progress goes to stderr so stdout stays a clean result table.
        print(format_event(event), file=sys.stderr, flush=True)

    compiler = BatchCompiler(
        cache=cache,
        max_workers=args.workers,
        default_config=default_config,
        jobs=args.jobs_n,
        on_event=None if args.quiet else live_status,
    )
    report = compiler.compile(jobs)

    any_device = any(
        outcome.result is not None and outcome.result.device is not None
        for outcome in report.outcomes
    )
    rows = []
    for outcome in report.outcomes:
        result = outcome.result
        row = [
            outcome.job.display,
            outcome.job.method,
            outcome.status,
            result.weight if result else "-",
            result.proved_optimal if result else "-",
            f"{outcome.elapsed_s:.2f}",
        ]
        if any_device:
            hardware = result.hardware if result else None
            row[3:3] = [
                (result.device or "-") if result else "-",
                hardware.two_qubit_count if hardware else "-",
                hardware.depth if hardware else "-",
            ]
        rows.append(row)
    headers = ["job", "method", "status", "weight", "optimal", "time (s)"]
    if any_device:
        headers[3:3] = ["device", "routed 2q", "depth"]
    print(format_table(headers, rows))
    print(report.summary() + f" in {report.elapsed_s:.2f}s")
    for outcome in report.outcomes:
        if outcome.status == "error":
            print(f"error [{outcome.job.display}]: {outcome.error}", file=sys.stderr)
        elif outcome.cache_error:
            print(f"warning [{outcome.job.display}]: result not cached "
                  f"({outcome.cache_error})", file=sys.stderr)
    if cache is not None:
        stats = cache.stats
        print(f"cache: {stats.hits} hits, {stats.misses} misses, "
              f"{stats.warm_starts} warm starts, {stats.stores} stores "
              f"({args.cache})")
    return 0 if report.ok else 1


# -- devices -----------------------------------------------------------------


def cmd_devices_ls(args) -> int:
    rows = []
    for name, description in list_devices():
        topology = get_device(name)
        rows.append([
            name,
            topology.num_qubits,
            len(topology.edges),
            topology.diameter,
            description,
        ])
    print(format_table(["device", "qubits", "couplers", "diameter", "description"],
                       rows))
    print(f"parametric specs: {device_spec_help()}")
    return 0


def cmd_devices_show(args) -> int:
    topology = get_device(args.name)
    degrees = [topology.degree(qubit) for qubit in range(topology.num_qubits)]
    print(f"device:    {topology.name}")
    print(f"qubits:    {topology.num_qubits}")
    print(f"couplers:  {len(topology.edges)}")
    print(f"diameter:  {topology.diameter}")
    print(f"degree:    min={min(degrees)} max={max(degrees)} "
          f"mean={sum(degrees) / len(degrees):.2f}")
    weights = connectivity_weights(topology)
    print(f"objective weights: {list(weights)}")
    print("couplers:")
    line = "  "
    for a, b in topology.edges:
        token = f"({a},{b}) "
        if len(line) + len(token) > 78:
            print(line.rstrip())
            line = "  "
        line += token
    if line.strip():
        print(line.rstrip())
    return 0


# -- cache -------------------------------------------------------------------


def _format_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.0f}h"
    return f"{seconds / 86400:.0f}d"


def cmd_cache_ls(args) -> int:
    cache = CompilationCache(args.dir)
    entries = cache.entries()
    if not entries:
        print(f"cache at {cache.root} is empty")
        return 0
    now = time.time()
    rows = []
    for info in entries:
        rows.append([
            info.key[:12],
            "?" if info.corrupted else info.num_modes,
            "corrupted" if info.corrupted else info.method,
            "-" if info.weight is None else info.weight,
            "-" if info.proved_optimal is None else info.proved_optimal,
            _format_age(max(0.0, now - info.created_at)),
            info.size_bytes,
        ])
    print(format_table(
        ["key", "modes", "method", "weight", "optimal", "age", "bytes"], rows
    ))
    print(f"{len(entries)} entries at {cache.root}")
    return 0


def cmd_cache_show(args) -> int:
    cache = CompilationCache(args.dir)
    matches = cache.find(args.key)
    if not matches:
        print(f"error: no cache entry matches {args.key!r}", file=sys.stderr)
        return 2
    if len(matches) > 1:
        print(f"error: {args.key!r} is ambiguous "
              f"({len(matches)} entries):", file=sys.stderr)
        for info in matches:
            print(f"  {info.key}", file=sys.stderr)
        return 2
    info = matches[0]
    if info.corrupted:
        print(f"key:             {info.key}")
        print(f"path:            {info.path}")
        print("status:          corrupted (run 'repro cache gc' to remove)")
        return 1
    result = cache.get(info.key)
    if result is None:
        print(f"error: entry {info.key} could not be decoded", file=sys.stderr)
        return 1
    if args.json:
        print(info.path.read_text(), end="")
        return 0
    print(f"key:             {info.key}")
    print(f"path:            {info.path}")
    _print_result_summary(
        result, mid_lines=(f"modes:           {result.encoding.num_modes}",)
    )
    return 0


def cmd_cache_gc(args) -> int:
    cache = CompilationCache(args.dir)
    report = cache.gc(
        drop_unproved=args.drop_unproved,
        max_entries=args.max_entries,
        dry_run=args.dry_run,
    )
    verb = "would remove" if report.dry_run else "removed"
    print(f"{verb} {len(report.removed)} entries ({report.removed_bytes} bytes), "
          f"kept {report.kept}")
    if report.temp_files_removed:
        print(f"{verb} {report.temp_files_removed} stale temp files")
    for info in report.removed:
        print(f"  {info.key[:12]}  {report.reasons.get(info.key, '?')}")
    return 0


# -- service -----------------------------------------------------------------


def cmd_serve(args) -> int:
    import signal

    from repro.service import CompilationService, ServiceServer

    cache = CompilationCache(args.cache) if args.cache else None
    service = CompilationService(
        cache=cache,
        default_config=_config_from_args(args),
        jobs=args.jobs_n or 1,
        queue_limit=args.queue_limit,
        max_attempts=args.max_attempts,
        default_device=args.device,
    ).start()
    server = ServiceServer((args.host, args.port), service, verbose=args.verbose)

    def handle_signal(signum, frame):
        # First signal: graceful drain; a second one cancels queued jobs
        # too (jobs already on a worker always run to completion).
        if service.state == "serving":
            print("shutting down: draining accepted jobs "
                  "(signal again to cancel queued ones)", file=sys.stderr)
            server.request_shutdown(drain=True)
        else:
            print("shutting down: cancelling queued jobs", file=sys.stderr)
            server.request_shutdown(drain=False)

    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)
    print(f"repro service at {server.url}")
    print(f"  metrics:     {server.url}/metrics")
    print(f"  cache:       {args.cache or 'disabled'}")
    print(f"  workers:     {service.jobs} "
          f"({service.healthz()['execution']})")
    print(f"  queue limit: {service.queue_limit}", flush=True)
    server.serve_until_stopped()
    print("service stopped")
    return 0


def _submit_spec_from_args(args) -> dict:
    spec: dict = {}
    if args.model:
        spec["model"] = args.model
    if args.modes:
        spec["modes"] = args.modes
    spec["method"] = args.method or (
        "independent" if args.modes else "full-sat"
    )
    if args.device:
        spec["device"] = args.device
    if args.seed is not None:
        spec["seed"] = args.seed
    if args.label:
        spec["label"] = args.label
    config: dict = {}
    if args.budget_s is not None:
        config["budget_s"] = args.budget_s
    if args.max_conflicts is not None:
        config["max_conflicts"] = args.max_conflicts
    if args.proof:
        config["proof"] = True
    if getattr(args, "deadline", None) is not None:
        config["deadline_s"] = args.deadline
    if config:
        spec["config"] = config
    return spec


def cmd_submit(args) -> int:
    from repro.service import JobFailedError, ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        record = client.submit(_submit_spec_from_args(args))
        note = " (deduplicated)" if record.get("deduplicated") else ""
        print(f"job:    {record['id']}")
        print(f"status: {record['status']}{note}", flush=True)
        if not args.wait:
            return 0
        record = client.wait(record["id"], timeout=args.timeout)
        result = client.result(record)
    except JobFailedError as failure:
        print(f"error: {failure}", file=sys.stderr)
        return 1
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"outcome:         {record['outcome']}")
    _print_result_summary(result)
    return 0


def cmd_jobs_ls(args) -> int:
    from repro.service import ServiceClient, ServiceError

    try:
        jobs = ServiceClient(args.url).jobs()
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not jobs:
        print(f"no jobs at {args.url or 'the service'}")
        return 0
    rows = [
        [
            job["id"][:12],
            job["label"],
            job["method"],
            job["status"],
            job["outcome"] or "-",
            "-" if job["weight"] is None else job["weight"],
            "-" if job["proved_optimal"] is None else job["proved_optimal"],
            job["submissions"],
            f"{job['elapsed_s']:.2f}",
        ]
        for job in jobs
    ]
    print(format_table(
        ["job", "label", "method", "status", "outcome", "weight",
         "optimal", "submits", "time (s)"],
        rows,
    ))
    return 0


def cmd_jobs_show(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        record = client.job(args.id)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(record, indent=2))
        return 0
    print(f"job:             {record['id']}")
    print(f"label:           {record['label']}")
    print(f"status:          {record['status']}")
    if record["outcome"]:
        print(f"outcome:         {record['outcome']}")
    if record["error"]:
        print(f"error:           {record['error']}")
    if record["cache_error"]:
        print(f"cache error:     {record['cache_error']}")
    print(f"submissions:     {record['submissions']}")
    if record.get("result") is not None:
        _print_result_summary(client.result(record))
        return 0
    return 0 if record["status"] != "failed" else 1


def cmd_jobs_proof(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        payload = client.proof(args.id)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    proof = payload.get("proof") or {}
    print(f"job:             {payload['id']}")
    if proof.get("sha256"):
        print(f"sha256:          {proof['sha256']}")
    print(f"proof lines:     {proof.get('drat_lines', '-')}")
    for key in ("bound", "engine"):
        if proof.get(key) is not None:
            print(f"{key + ':':<17}{proof[key]}")
    document = payload.get("trace")
    if args.out:
        if document is None:
            print("error: the service holds proof metadata but no trace "
                  "artifact to save", file=sys.stderr)
            return 1
        Path(args.out).write_text(json.dumps(document, sort_keys=True) + "\n")
        print(f"saved proof to {args.out}")
    if args.no_verify:
        return 0
    try:
        report = client.verify_proof(payload["id"])
    except ServiceError as error:
        print(f"verdict:         UNAVAILABLE ({error})")
        return 1
    if report["verified"]:
        print(f"verdict:         OK ({report['checked_additions']} additions "
              f"checked in {report['steps']} steps, verified client-side)")
        return 0
    print(f"verdict:         FAILED ({report['reason']})")
    return 1


def cmd_shutdown(args) -> int:
    from repro.service import ServiceClient, ServiceError

    try:
        reply = ServiceClient(args.url).shutdown(drain=not args.no_drain)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    verb = "cancelling" if args.no_drain else "draining"
    print(f"shutdown accepted: {verb} {reply['queued']} queued job(s), "
          f"{reply['running']} running")
    return 0


# -- live ops console ---------------------------------------------------------


def _latency_cells(families: dict, family: str,
                   quantiles=(0.5, 0.9, 0.99)) -> str:
    """``p50/p90/p99`` of one latency histogram as ``a/b/c ms``."""
    from repro.telemetry import histogram_quantile

    info = families.get(family) or {}
    buckets = [
        (labels.get("le", "+Inf"), value)
        for labels, value in (info.get("samples") or {}).get(
            f"{family}_bucket", ())
    ]
    cells = []
    for q in quantiles:
        value = histogram_quantile(q, buckets) if buckets else None
        cells.append("-" if value is None else f"{value * 1000:.1f}")
    return "/".join(cells) + " ms"


def _progress_row(job: dict, progress: dict | None) -> list:
    snapshot = progress or {}
    rate = snapshot.get("conflicts_per_s")
    eta = snapshot.get("eta_s")
    return [
        job["id"][:12],
        job["label"],
        job["status"],
        snapshot.get("engine", "-"),
        "-" if snapshot.get("bound") is None else snapshot["bound"],
        "-" if snapshot.get("conflicts") is None else snapshot["conflicts"],
        "-" if rate is None else f"{rate:.0f}/s",
        "-" if snapshot.get("elapsed_s") is None
        else f"{snapshot['elapsed_s']:.1f}s",
        "-" if eta is None else f"{eta:.0f}s",
    ]


def _render_top(client) -> str:
    """One frame of the ops console: stats + quantiles + active jobs."""
    from repro.telemetry import parse_prometheus_text

    stats = client.stats()
    families = parse_prometheus_text(client.metrics())
    jobs = client.jobs()
    tallies = stats.get("jobs") or {}
    counters = stats.get("counters") or {}
    cache = stats.get("cache") or {}

    lines = [
        f"repro service at {client.base_url} — state {stats['state']}, "
        f"up {stats['uptime_s']:.0f}s",
        f"workers: {stats['workers']} ({stats['execution']})   "
        f"queued: {tallies.get('queued', 0)}/{stats['queue_limit']}   "
        f"running: {tallies.get('running', 0)}   "
        f"done: {tallies.get('done', 0)}   "
        f"failed: {tallies.get('failed', 0)}",
    ]
    if cache.get("enabled"):
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        total = hits + misses
        ratio = f" ({100.0 * hits / total:.0f}% hit)" if total else ""
        lines.append(f"cache: {hits} hits, {misses} misses{ratio}, "
                     f"{cache.get('warm_starts', 0)} warm starts")
    else:
        lines.append("cache: disabled")
    lines.append(
        "counters: " + "  ".join(
            f"{name} {counters.get(name, 0)}"
            for name in ("submitted", "accepted", "deduplicated",
                         "cache_hits", "completed", "failed", "rejected")
        )
    )
    lines.append(
        "latency p50/p90/p99: "
        f"submit {_latency_cells(families, 'repro_service_submit_seconds')}"
        f"   poll {_latency_cells(families, 'repro_service_poll_seconds')}"
    )
    active = [job for job in jobs if job["status"] in ("queued", "running")]
    if active:
        rows = []
        for job in active:
            try:
                progress = client.progress(job["id"]).get("progress")
            except Exception:  # job may finish between /jobs and here
                progress = None
            rows.append(_progress_row(job, progress))
        lines.append("")
        lines.append(format_table(
            ["job", "label", "status", "engine", "bound", "conflicts",
             "confl/s", "elapsed", "eta"],
            rows,
        ))
    else:
        lines.append("no active jobs")
    return "\n".join(lines)


def cmd_top(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    while True:
        try:
            frame = _render_top(client)
        except ServiceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.once:
            print(frame)
            return 0
        # Clear + home, repaint, and truncate any taller previous frame.
        sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
        sys.stdout.flush()
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _format_watch_line(payload: dict) -> str:
    snapshot = payload.get("progress") or {}
    parts = [payload["id"][:12], payload["status"]]
    if snapshot.get("bound") is not None:
        parts.append(f"bound={snapshot['bound']}")
    if snapshot.get("conflicts") is not None:
        rate = snapshot.get("conflicts_per_s")
        rate_text = "" if rate is None else f" ({rate:.0f}/s)"
        parts.append(f"conflicts={snapshot['conflicts']}{rate_text}")
    if snapshot.get("elapsed_s") is not None:
        parts.append(f"elapsed={snapshot['elapsed_s']:.1f}s")
    if snapshot.get("eta_s") is not None:
        parts.append(f"eta={snapshot['eta_s']:.0f}s")
    if snapshot.get("last_kind") or snapshot.get("kind"):
        parts.append(f"[{snapshot.get('last_kind') or snapshot.get('kind')}]")
    return "  ".join(str(part) for part in parts)


def cmd_watch(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    last_line = None
    try:
        while True:
            payload = client.progress(args.id)
            line = _format_watch_line(payload)
            if line != last_line:
                print(line, flush=True)
                last_line = line
            if payload["status"] in ("done", "failed", "cancelled"):
                return 0 if payload["status"] == "done" else 1
            time.sleep(args.interval)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


def cmd_jobs_forensics(args) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        payload = client.forensics(args.id)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    dump = payload.get("forensics") or {}
    print(f"job:         {payload['id']}")
    captured = dump.get("captured_at")
    if captured is not None:
        print("captured at: " + time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(captured)))
    if dump.get("synthesized"):
        print("(synthesized dump — the worker crashed before relaying one)")
    error_text = dump.get("error")
    if error_text:
        print("error:")
        for line in str(error_text).rstrip().splitlines():
            print(f"  {line}")
    events = dump.get("events") or []
    print(f"breadcrumbs ({len(events)}):")
    for event in events:
        fields = {
            key: value for key, value in event.items()
            if key not in ("level", "message", "ts", "seq")
        }
        suffix = f"  {fields}" if fields else ""
        print(f"  [{event.get('level', '?')}] "
              f"{event.get('message', event.get('kind', '?'))}{suffix}")
    spans = dump.get("open_spans") or []
    if spans:
        print(f"open spans ({len(spans)}):")
        for span in spans:
            age = span.get("age_s")
            age_text = "-" if age is None else f"{age:.1f}s"
            print(f"  {span.get('name', '?')}  open {age_text}  "
                  f"{span.get('attrs') or {}}")
    metrics_text = dump.get("metrics")
    if metrics_text:
        print(f"metrics snapshot: {len(metrics_text.splitlines())} lines "
              "(--json to see it)")
    return 0


# -- perf history -------------------------------------------------------------


def cmd_bench_record(args) -> int:
    from repro.analysis.perfhistory import record_run

    entries = record_run(args.json_dir, args.history,
                         sha=args.sha, note=args.note)
    if not entries:
        print(f"error: no BENCH_*.json snapshots in {args.json_dir}",
              file=sys.stderr)
        return 2
    print(f"recorded {len(entries)} benchmark(s) at sha "
          f"{entries[0]['sha'][:12]} -> {args.history}")
    return 0


def cmd_bench_compare(args) -> int:
    from repro.analysis.perfhistory import compare_runs, format_report

    report = compare_runs(args.json_dir, args.history,
                          threshold=args.threshold, sha=args.sha)
    print(format_report(report))
    return 0 if report.ok else 1


_URL_HELP = ("service URL (default: $REPRO_SERVICE_URL or "
             "http://127.0.0.1:8765)")


_DEVICE_HELP = ("target device: a preset from 'repro devices ls' or a spec "
                "(linear-<n> | ring-<n> | grid-<r>x<c> | heavy-hex-<r>x<c> | "
                "all-to-all-<n>); enables hardware-aware compilation")


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fermihedral: SAT-optimal fermion-to-qubit encoding compiler",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser(
        "solve",
        help="find an optimal encoding",
        description="Run the SAT weight descent for an optimal encoding, "
                    "Hamiltonian-independent (--modes) or Hamiltonian-"
                    "dependent (--model).",
    )
    solve.add_argument("--modes", type=int, default=None, metavar="N",
                       help="mode count for a Hamiltonian-independent solve")
    solve.add_argument("--model", default=None, metavar="SPEC", help=_MODEL_HELP)
    solve.add_argument("--method", choices=("full-sat", "sat-anl"),
                       default="full-sat",
                       help="Hamiltonian-dependent strategy: weight in the SAT "
                            "objective (full-sat) or independent SAT optimum "
                            "plus annealed pairing (sat-anl)")
    _add_solver_options(solve)
    solve.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for this solve (alias for "
                            "--portfolio, which wins if both are given)")
    solve.add_argument("--stats", action="store_true",
                       help="print solver statistics (conflicts, decisions, "
                            "propagations, restarts) per descent step")
    solve.add_argument("--profile", action="store_true",
                       help="run the pipeline under cProfile and print the "
                            "top-20 functions by cumulative time")
    solve.add_argument("--device", default=None, metavar="NAME", help=_DEVICE_HELP)
    solve.add_argument("--cache", default=None, metavar="DIR",
                       help="memoize results in a persistent compilation "
                            "cache at DIR (hit: zero SAT calls; unproved "
                            "entries warm-start the descent)")
    solve.add_argument("--output", default=None, metavar="FILE",
                       help="save the encoding as JSON here")
    solve.add_argument("--proof-out", default=None, metavar="FILE",
                       help="save the optimality-proof artifact as JSON here "
                            "(implies --proof); without it, --proof stores "
                            "the artifact in the cache or next to the "
                            "working directory")
    solve.add_argument("--trace", default=None, metavar="FILE.jsonl",
                       help="record the compile's span tree (compile -> "
                            "descent -> rung -> solve) as JSONL here; "
                            "render it with 'repro trace show'")
    solve.set_defaults(handler=cmd_solve)

    trace_parser = subparsers.add_parser(
        "trace",
        help="inspect recorded telemetry traces",
        description="Work with span traces recorded by 'repro solve "
                    "--trace FILE.jsonl'.",
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_show = trace_sub.add_parser(
        "show", help="render a trace file as a span tree",
        description="Pretty-print a JSONL trace: one line per span, "
                    "indented by parent, with durations and attributes "
                    "(per-rung bound, engine, status, conflicts).",
    )
    trace_show.add_argument("file", help="JSONL trace file from "
                                         "'repro solve --trace'")
    trace_show.set_defaults(handler=cmd_trace_show)

    baselines = subparsers.add_parser(
        "baselines",
        help="tabulate baseline weights",
        description="Compare the textbook encodings (JW, BK, parity, ternary "
                    "tree) by Majorana weight and, with --model, by encoded-"
                    "Hamiltonian weight.",
    )
    baselines.add_argument("--modes", type=int, default=None, metavar="N",
                           help="mode count to tabulate")
    baselines.add_argument("--model", default=None, metavar="SPEC",
                           help=_MODEL_HELP)
    baselines.set_defaults(handler=cmd_baselines)

    compile_parser = subparsers.add_parser(
        "compile",
        help="compile a Trotter circuit",
        description="Encode a model with a chosen encoding and report gate "
                    "counts of the optimized Trotter circuit.",
    )
    compile_parser.add_argument("--model", required=True, metavar="SPEC",
                                help=_MODEL_HELP)
    compile_parser.add_argument("--encoding", default="bk",
                                help="jw | bk | parity | tt | random[:seed] | "
                                     "<file.json> (default: bk)")
    compile_parser.add_argument("--time", type=float, default=1.0,
                                help="evolution time (default: 1.0)")
    compile_parser.add_argument("--steps", type=int, default=1,
                                help="Trotter steps (default: 1)")
    compile_parser.add_argument("--device", default=None, metavar="NAME",
                                help=_DEVICE_HELP + " (reports the routed cost "
                                     "of one Trotter step)")
    compile_parser.set_defaults(handler=cmd_compile)

    verify = subparsers.add_parser(
        "verify",
        help="verify an encoding JSON file",
        description="Re-check anticommutativity, algebraic independence, and "
                    "vacuum preservation of a saved encoding.",
    )
    verify.add_argument("encoding_file", help="encoding JSON produced by "
                                              "'repro solve --output'")
    verify.set_defaults(handler=cmd_verify)

    verify_proof = subparsers.add_parser(
        "verify-proof",
        help="re-check a DRAT optimality-proof artifact",
        description="Independently verify a proof artifact produced by "
                    "'repro solve --proof': replay its DRAT derivation "
                    "against the embedded CNF with a backward RUP/RAT "
                    "checker that shares no code with the solver. Accepts "
                    "a file path or a (prefix of a) sha256 resolved "
                    "against the cache's proofs/ directory.",
    )
    verify_proof.add_argument("artifact",
                              help="proof JSON file, or a unique sha256 "
                                   "prefix of a cache-stored proof")
    verify_proof.add_argument("--dir", default=str(default_cache_dir()),
                              metavar="DIR",
                              help="cache directory for sha lookups "
                                   "(default: $REPRO_CACHE_DIR or "
                                   "~/.cache/fermihedral)")
    verify_proof.set_defaults(handler=cmd_verify_proof)

    lint = subparsers.add_parser(
        "lint",
        help="run the project-invariant static analyzer",
        description="Statically check the tree against the project's own "
                    "invariants: config-field classification (L001), "
                    "hot-path telemetry gating (L002), stdlib-only layer "
                    "boundaries (L003), serialization back-compat (L004), "
                    "worker picklability (L005), and a lock-acquisition "
                    "race detector over the threaded subsystems "
                    "(C001 lock-order inversions, C002 unguarded writes "
                    "to lock-guarded attributes). Exit 1 on any error-"
                    "severity finding. Suppress a finding inline with "
                    "'# repro-lint: disable=RULE'.",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to analyze "
                           "(default: src/ if present, else .)")
    lint_format = lint.add_mutually_exclusive_group()
    lint_format.add_argument("--json", action="store_true",
                             help="machine-readable report "
                                  "(schema version 1)")
    lint_format.add_argument("--sarif", action="store_true",
                             help="SARIF 2.1.0 report for code-scanning "
                                  "uploads")
    lint.add_argument("--rules", default=None, metavar="IDS",
                      help="comma-separated rule-id allowlist "
                           "(default: all rules)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="accepted-findings file; matching findings are "
                           "filtered, stale entries warned about")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="write the current findings as a baseline "
                           "and exit 0")
    lint.add_argument("--explain", default=None, metavar="RULE",
                      help="print one rule's rationale and a minimal "
                           "violating/fixed example, then exit")
    lint.set_defaults(handler=cmd_lint)

    batch = subparsers.add_parser(
        "batch",
        help="compile many jobs concurrently, deduplicated through the cache",
        description="Fan a list of compilation jobs across workers. "
                    "Jobs with identical fingerprints are compiled once; with "
                    "--cache, results persist across runs and already-final "
                    "entries short-circuit in the parent. --jobs N uses N "
                    "worker processes (real CPU parallelism); otherwise a "
                    "thread pool runs the batch. Jobs come from a "
                    "JSON file (a list of objects with 'model' or 'modes', "
                    "plus optional 'method', 'seed', 'label') and/or repeated "
                    "--model flags.",
    )
    batch.add_argument("jobs", nargs="?", default=None,
                       help="JSON job-list file, or '-' for stdin")
    batch.add_argument("--model", action="append", default=[], metavar="SPEC",
                       help=f"add one job compiling {_MODEL_HELP} (repeatable)")
    batch.add_argument("--method",
                       choices=("full-sat", "sat-anl", "independent"),
                       default="full-sat",
                       help="method for jobs that do not specify one "
                            "(default: full-sat)")
    batch.add_argument("--jobs", type=int, default=None, metavar="N", dest="jobs_n",
                       help="worker processes (default: 1 = thread pool); "
                            "identical results at any N, only faster")
    batch.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker threads when --jobs is not given "
                            "(default: executor default)")
    batch.add_argument("--quiet", action="store_true",
                       help="suppress the live per-job status line on stderr")
    batch.add_argument("--cache", default=None, metavar="DIR",
                       help="persistent compilation cache directory")
    batch.add_argument("--device", default=None, metavar="NAME",
                       help=_DEVICE_HELP + " (jobs may override it with their "
                            "own 'device' field)")
    _add_solver_options(batch)
    batch.set_defaults(handler=cmd_batch)

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect or prune the compilation cache",
        description="Manage the persistent compilation cache used by "
                    "'solve --cache' and 'batch --cache'.",
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)

    def _add_dir(sub):
        sub.add_argument("--dir", default=str(default_cache_dir()), metavar="DIR",
                         help="cache directory (default: $REPRO_CACHE_DIR or "
                              "~/.cache/fermihedral)")

    cache_ls = cache_sub.add_parser(
        "ls", help="list cache entries",
        description="List every cached compilation result, flagging "
                    "corrupted entries.",
    )
    _add_dir(cache_ls)
    cache_ls.set_defaults(handler=cmd_cache_ls)

    cache_show = cache_sub.add_parser(
        "show", help="show one cache entry",
        description="Print one cached result, looked up by unique key prefix.",
    )
    cache_show.add_argument("key", help="entry key (any unique prefix)")
    cache_show.add_argument("--json", action="store_true",
                            help="dump the raw entry JSON instead of a summary")
    _add_dir(cache_show)
    cache_show.set_defaults(handler=cmd_cache_show)

    cache_gc = cache_sub.add_parser(
        "gc", help="prune the cache",
        description="Remove corrupted entries, and optionally unproved "
                    "results or everything beyond a size limit.",
    )
    cache_gc.add_argument("--drop-unproved", action="store_true",
                          help="also evict results never proved optimal "
                               "(keeps sat+annealing entries, which are "
                               "final for their seed)")
    cache_gc.add_argument("--max-entries", type=int, default=None, metavar="N",
                          help="keep at most the N newest surviving entries")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be removed without deleting")
    _add_dir(cache_gc)
    cache_gc.set_defaults(handler=cmd_cache_gc)

    serve = subparsers.add_parser(
        "serve",
        help="run the compilation service daemon",
        description="Serve a JSON-over-HTTP compilation API: POST /jobs "
                    "submits a job spec (deduplicated by fingerprint; cache "
                    "hits answer synchronously), GET /jobs/<id> polls it, "
                    "GET /jobs/<id>/proof serves its DRAT certificate, "
                    "GET /healthz and /stats report liveness and counters, "
                    "GET /metrics exposes the telemetry registry in "
                    "Prometheus text format, GET /debug/trace/<id> returns "
                    "a finished job's span events, and POST /shutdown "
                    "drains and exits. Jobs fan out across --jobs worker "
                    "processes; a full queue answers 429.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks an ephemeral one "
                            "(default: 8765)")
    serve.add_argument("--jobs", type=int, default=None, metavar="N",
                       dest="jobs_n",
                       help="worker processes draining the queue "
                            "(default: 1)")
    serve.add_argument("--queue-limit", type=int, default=64, metavar="N",
                       help="bound on active (queued + running) jobs; "
                            "submissions beyond it get HTTP 429 "
                            "(default: 64)")
    serve.add_argument("--max-attempts", type=int, default=3, metavar="N",
                       help="total attempts per job: retryable failures "
                            "(killed worker, spawn failure) are requeued "
                            "with backoff up to N-1 times, resuming from "
                            "the descent checkpoint (default: 3)")
    serve.add_argument("--cache", default=None, metavar="DIR",
                       help="persistent compilation cache backing the "
                            "service (hits answer without queueing)")
    serve.add_argument("--device", default=None, metavar="NAME",
                       help=_DEVICE_HELP + " (jobs may override it with "
                            "their own 'device' field)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    _add_solver_options(serve)
    serve.set_defaults(handler=cmd_serve)

    submit = subparsers.add_parser(
        "submit",
        help="submit one job to a running service",
        description="POST one compilation job to a 'repro serve' daemon "
                    "and print its id; --wait polls until it finishes and "
                    "prints the result.",
    )
    submit.add_argument("--url", default=None, help=_URL_HELP)
    submit.add_argument("--model", default=None, metavar="SPEC",
                        help=_MODEL_HELP)
    submit.add_argument("--modes", type=int, default=None, metavar="N",
                        help="mode count for a Hamiltonian-independent job")
    submit.add_argument("--method",
                        choices=("full-sat", "sat-anl", "independent"),
                        default=None,
                        help="compile method (default: full-sat with "
                             "--model, independent with --modes)")
    submit.add_argument("--device", default=None, metavar="NAME",
                        help=_DEVICE_HELP)
    submit.add_argument("--seed", type=int, default=None, metavar="N",
                        help="annealing RNG seed (sat-anl only)")
    submit.add_argument("--label", default=None,
                        help="display name in job listings")
    submit.add_argument("--budget-s", type=float, default=None,
                        metavar="SECONDS",
                        help="per-SAT-call time budget override")
    submit.add_argument("--proof", action="store_true",
                        help="capture a DRAT optimality proof "
                             "(fetch it later with 'repro jobs proof')")
    submit.add_argument("--max-conflicts", type=int, default=None, metavar="N",
                        help="per-SAT-call conflict budget override")
    submit.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="whole-job wall-clock deadline; on expiry the "
                             "job finishes 'degraded' with the best "
                             "encoding found so far")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print the "
                             "result")
    submit.add_argument("--timeout", type=float, default=3600.0,
                        metavar="SECONDS",
                        help="--wait deadline (default: 3600)")
    submit.set_defaults(handler=cmd_submit)

    jobs_parser = subparsers.add_parser(
        "jobs",
        help="list or inspect jobs on a running service",
        description="Query a 'repro serve' daemon's job registry.",
    )
    jobs_sub = jobs_parser.add_subparsers(dest="jobs_command", required=True)
    jobs_ls = jobs_sub.add_parser(
        "ls", help="list all jobs",
        description="Tabulate every job the service has accepted, newest "
                    "last.",
    )
    jobs_ls.add_argument("--url", default=None, help=_URL_HELP)
    jobs_ls.set_defaults(handler=cmd_jobs_ls)
    jobs_show = jobs_sub.add_parser(
        "show", help="show one job",
        description="Print one job record (any unique id prefix), "
                    "including its full result once done.",
    )
    jobs_show.add_argument("id", help="job id (any unique prefix)")
    jobs_show.add_argument("--json", action="store_true",
                           help="dump the raw wire record instead of a "
                                "summary")
    jobs_show.add_argument("--url", default=None, help=_URL_HELP)
    jobs_show.set_defaults(handler=cmd_jobs_show)
    jobs_proof = jobs_sub.add_parser(
        "proof", help="fetch and client-side-verify a job's proof",
        description="Download a finished job's DRAT optimality proof from "
                    "the service and re-check it locally with the "
                    "independent checker — the service is never trusted "
                    "about its own certificates.",
    )
    jobs_proof.add_argument("id", help="job id (any unique prefix)")
    jobs_proof.add_argument("--out", default=None, metavar="FILE",
                            help="also save the proof artifact as JSON here")
    jobs_proof.add_argument("--no-verify", action="store_true",
                            help="fetch metadata (and --out) without running "
                                 "the checker")
    jobs_proof.add_argument("--url", default=None, help=_URL_HELP)
    jobs_proof.set_defaults(handler=cmd_jobs_proof)
    jobs_forensics = jobs_sub.add_parser(
        "forensics", help="fetch a failed job's flight-recorder dump",
        description="Download the forensics dump the service captured "
                    "when a job failed: breadcrumb trail, spans still "
                    "open at the moment of death, a metrics snapshot, "
                    "and the worker-side traceback.",
    )
    jobs_forensics.add_argument("id", help="job id (any unique prefix)")
    jobs_forensics.add_argument("--json", action="store_true",
                                help="dump the raw wire payload instead "
                                     "of a summary")
    jobs_forensics.add_argument("--url", default=None, help=_URL_HELP)
    jobs_forensics.set_defaults(handler=cmd_jobs_forensics)

    top = subparsers.add_parser(
        "top",
        help="live ops console for a running service",
        description="Continuously render a running service's vitals: "
                    "queue depth, worker slots, cache hit ratio, "
                    "submit/poll latency quantiles (computed client-side "
                    "from /metrics histograms), and one row per active "
                    "job with its current bound, conflict rate, and rung "
                    "ETA.  Ctrl-C exits; --once prints a single frame "
                    "(scripts, CI smoke tests).",
    )
    top.add_argument("--url", default=None, help=_URL_HELP)
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit instead of looping")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="refresh period (default: 2.0)")
    top.set_defaults(handler=cmd_top)

    watch = subparsers.add_parser(
        "watch",
        help="follow one job's live progress until it finishes",
        description="Poll a job's /progress endpoint and print a line "
                    "whenever its snapshot changes (bound, conflicts, "
                    "conflict rate, rung ETA).  Exits 0 when the job "
                    "finishes 'done', 1 on 'failed' or 'cancelled'.",
    )
    watch.add_argument("id", help="job id (any unique prefix)")
    watch.add_argument("--url", default=None, help=_URL_HELP)
    watch.add_argument("--interval", type=float, default=0.5,
                       metavar="SECONDS",
                       help="poll period (default: 0.5)")
    watch.set_defaults(handler=cmd_watch)

    shutdown = subparsers.add_parser(
        "shutdown",
        help="gracefully stop a running service",
        description="Ask a 'repro serve' daemon to stop: intake closes "
                    "immediately, accepted jobs finish (unless "
                    "--no-drain), then the daemon exits.",
    )
    shutdown.add_argument("--url", default=None, help=_URL_HELP)
    shutdown.add_argument("--no-drain", action="store_true",
                          help="cancel still-queued jobs instead of "
                               "finishing them (running jobs always "
                               "complete)")
    shutdown.set_defaults(handler=cmd_shutdown)

    devices_parser = subparsers.add_parser(
        "devices",
        help="list or inspect target device topologies",
        description="Browse the device registry used by --device: realistic "
                    "presets plus parametric layouts (linear, ring, grid, "
                    "heavy-hex, all-to-all).",
    )
    devices_sub = devices_parser.add_subparsers(dest="devices_command",
                                                required=True)
    devices_ls = devices_sub.add_parser(
        "ls", help="list device presets",
        description="Tabulate every registry preset with its size, coupler "
                    "count and diameter.",
    )
    devices_ls.set_defaults(handler=cmd_devices_ls)
    devices_show = devices_sub.add_parser(
        "show", help="show one device topology",
        description="Print a device's coupling graph, degree profile and "
                    "the per-qubit objective weights it induces.",
    )
    devices_show.add_argument("name", help="preset name or parametric spec "
                                           "(e.g. grid-3x3)")
    devices_show.set_defaults(handler=cmd_devices_show)

    bench = subparsers.add_parser(
        "bench",
        help="record or compare benchmark perf history",
        description="Track the benchmark suite's performance over time: "
                    "'record' appends a --json DIR snapshot to the "
                    "append-only ledger keyed by git sha; 'compare' "
                    "diffs a fresh snapshot against the last recorded "
                    "commit and exits non-zero when any metric regressed "
                    "beyond the threshold.",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    def _add_bench_common(sub):
        sub.add_argument("--json-dir", required=True, metavar="DIR",
                         help="directory of BENCH_*.json snapshots "
                              "(the benchmark suite's --json DIR)")
        sub.add_argument("--history",
                         default="benchmarks/results/history.jsonl",
                         metavar="FILE",
                         help="ledger path (default: "
                              "benchmarks/results/history.jsonl)")
        sub.add_argument("--sha", default=None,
                         help="override the git sha (default: "
                              "'git rev-parse HEAD', or 'unknown')")

    bench_record = bench_sub.add_parser(
        "record", help="append a benchmark run to the ledger",
        description="Store every BENCH_*.json in --json-dir as one "
                    "ledger line each, stamped with the current git sha.",
    )
    _add_bench_common(bench_record)
    bench_record.add_argument("--note", default=None,
                              help="free-form annotation stored with "
                                   "the run")
    bench_record.set_defaults(handler=cmd_bench_record)

    bench_compare = bench_sub.add_parser(
        "compare", help="diff a benchmark run against the ledger",
        description="Compare --json-dir against the newest recorded run "
                    "from a different sha.  Rates (…per_s, …throughput) "
                    "must not drop and costs (…_wall_s, …conflicts) must "
                    "not rise by more than --threshold; any violation "
                    "makes the exit code 1.",
    )
    _add_bench_common(bench_compare)
    bench_compare.add_argument("--threshold", type=float, default=0.10,
                               metavar="FRACTION",
                               help="fractional regression threshold "
                                    "(default: 0.10)")
    bench_compare.set_defaults(handler=cmd_bench_compare)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
