"""Command-line interface to the Fermihedral compiler.

Subcommands::

    python -m repro solve     --modes 3 [--model hubbard:3] [options]
    python -m repro baselines --modes 4 [--model h2]
    python -m repro compile   --model h2 --encoding bk [--time 1.0]
    python -m repro verify    --encoding-file enc.json

Model specs: ``h2``, ``hubbard:<sites>``, ``hubbard:<rows>x<cols>``,
``syk:<modes>``, ``electronic:<modes>``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table
from repro.circuits import greedy_cancellation_order, optimize_circuit, trotter_circuit
from repro.core import (
    FermihedralConfig,
    SolverBudget,
    solve_full_sat,
    solve_hamiltonian_independent,
    solve_sat_annealing,
    verify_encoding,
)
from repro.encodings import (
    bravyi_kitaev,
    jordan_wigner,
    parity_encoding,
    random_encoding,
    ternary_tree,
)
from repro.encodings.serialization import load_encoding, save_encoding
from repro.fermion import (
    h2_hamiltonian,
    hubbard_chain,
    hubbard_lattice,
    random_molecular_hamiltonian,
    syk_hamiltonian,
    tv_chain,
)

_BASELINE_BUILDERS = {
    "jw": jordan_wigner,
    "bk": bravyi_kitaev,
    "parity": parity_encoding,
    "tt": ternary_tree,
}


def parse_model(spec: str):
    """Build a Hamiltonian from a ``family[:params]`` spec string."""
    family, _, parameter = spec.partition(":")
    family = family.lower()
    if family == "h2":
        return h2_hamiltonian()
    if family == "hubbard":
        if not parameter:
            raise ValueError("hubbard needs sites: hubbard:3 or hubbard:2x2")
        if "x" in parameter:
            rows, cols = (int(part) for part in parameter.split("x", 1))
            return hubbard_lattice(rows, cols)
        return hubbard_chain(int(parameter))
    if family == "syk":
        if not parameter:
            raise ValueError("syk needs a mode count: syk:4")
        return syk_hamiltonian(int(parameter))
    if family == "electronic":
        if not parameter:
            raise ValueError("electronic needs a mode count: electronic:6")
        return random_molecular_hamiltonian(int(parameter))
    if family == "tv":
        if not parameter:
            raise ValueError("tv needs a site count: tv:4")
        return tv_chain(int(parameter))
    raise ValueError(f"unknown model family: {family!r}")


def _config_from_args(args) -> FermihedralConfig:
    return FermihedralConfig(
        algebraic_independence=not args.no_alg,
        vacuum_preservation=not args.no_vacuum,
        exact_vacuum=args.exact_vacuum,
        strategy=args.strategy,
        budget=SolverBudget(
            max_conflicts=args.max_conflicts, time_budget_s=args.budget_s
        ),
    )


def _resolve_encoding(name: str, num_modes: int):
    if name in _BASELINE_BUILDERS:
        return _BASELINE_BUILDERS[name](num_modes)
    if name.startswith("random"):
        _, _, seed = name.partition(":")
        return random_encoding(num_modes, seed=int(seed or 0))
    return load_encoding(name)


def cmd_solve(args) -> int:
    config = _config_from_args(args)
    if args.model:
        hamiltonian = parse_model(args.model)
        if args.modes and args.modes != hamiltonian.num_modes:
            print(f"error: model has {hamiltonian.num_modes} modes, --modes says "
                  f"{args.modes}", file=sys.stderr)
            return 2
        if args.method == "sat-anl":
            result = solve_sat_annealing(hamiltonian, config)
        else:
            result = solve_full_sat(hamiltonian, config)
    else:
        if not args.modes:
            print("error: --modes or --model is required", file=sys.stderr)
            return 2
        result = solve_hamiltonian_independent(args.modes, config)

    report = result.verify()
    print(f"method:          {result.method}")
    print(f"weight:          {result.weight}")
    print(f"proved optimal:  {result.proved_optimal}")
    print(f"valid:           {report.valid}")
    print(f"vacuum:          {report.vacuum_preservation}")
    print(f"SAT calls:       {result.descent.sat_calls}"
          f" (solve {result.descent.solve_time_s:.2f}s)")
    print("majorana strings:")
    for index, string in enumerate(result.encoding.strings):
        print(f"  m_{index:<3d} {string.label()}")
    if args.output:
        save_encoding(result.encoding, args.output)
        print(f"saved encoding to {args.output}")
    return 0


def cmd_baselines(args) -> int:
    hamiltonian = parse_model(args.model) if args.model else None
    num_modes = hamiltonian.num_modes if hamiltonian else args.modes
    if not num_modes:
        print("error: --modes or --model is required", file=sys.stderr)
        return 2
    rows = []
    for name, builder in _BASELINE_BUILDERS.items():
        encoding = builder(num_modes)
        cells = [name, encoding.total_majorana_weight]
        if hamiltonian is not None:
            cells.append(encoding.hamiltonian_pauli_weight(hamiltonian))
        rows.append(cells)
    headers = ["encoding", "majorana weight"]
    if hamiltonian is not None:
        headers.append(f"H weight ({hamiltonian.name})")
    print(format_table(headers, rows))
    return 0


def cmd_compile(args) -> int:
    hamiltonian = parse_model(args.model)
    encoding = _resolve_encoding(args.encoding, hamiltonian.num_modes)
    operator = encoding.encode(hamiltonian).without_identity().hermitian_part()
    order = greedy_cancellation_order(operator)
    circuit = optimize_circuit(
        trotter_circuit(operator, time=args.time, steps=args.steps, term_order=order)
    )
    stats = circuit.gate_statistics()
    print(f"model:     {hamiltonian.name} ({hamiltonian.num_modes} modes)")
    print(f"encoding:  {encoding.name}")
    print(f"H weight:  {encoding.hamiltonian_pauli_weight(hamiltonian)}")
    print(f"terms:     {len(operator)}")
    print(f"gates:     single={stats['single']} cnot={stats['cnot']} "
          f"total={stats['total']} depth={stats['depth']}")
    return 0


def cmd_verify(args) -> int:
    encoding = load_encoding(args.encoding_file, validate=False)
    report = verify_encoding(encoding)
    print(f"strings:                 {len(encoding.strings)} "
          f"({encoding.num_modes} modes)")
    print(f"anticommutativity:       {report.anticommutativity}")
    print(f"algebraic independence:  {report.algebraic_independence}")
    print(f"vacuum preservation:     {report.vacuum_preservation}")
    for violation in report.violations:
        print(f"  violation: {violation}")
    return 0 if report.valid else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fermihedral: SAT-optimal fermion-to-qubit encoding compiler",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="find an optimal encoding")
    solve.add_argument("--modes", type=int, default=None)
    solve.add_argument("--model", default=None,
                       help="h2 | hubbard:<n> | hubbard:<r>x<c> | syk:<n> | electronic:<n> | tv:<sites>")
    solve.add_argument("--method", choices=("full-sat", "sat-anl"), default="full-sat")
    solve.add_argument("--no-alg", action="store_true",
                       help="drop algebraic-independence clauses (Section 4.1)")
    solve.add_argument("--no-vacuum", action="store_true")
    solve.add_argument("--exact-vacuum", action="store_true")
    solve.add_argument("--strategy", choices=("linear", "bisection"), default="linear")
    solve.add_argument("--budget-s", type=float, default=60.0)
    solve.add_argument("--max-conflicts", type=int, default=None)
    solve.add_argument("--output", default=None, help="save encoding JSON here")
    solve.set_defaults(handler=cmd_solve)

    baselines = subparsers.add_parser("baselines", help="tabulate baseline weights")
    baselines.add_argument("--modes", type=int, default=None)
    baselines.add_argument("--model", default=None)
    baselines.set_defaults(handler=cmd_baselines)

    compile_parser = subparsers.add_parser("compile", help="compile a Trotter circuit")
    compile_parser.add_argument("--model", required=True)
    compile_parser.add_argument("--encoding", default="bk",
                                help="jw | bk | parity | tt | random[:seed] | <file.json>")
    compile_parser.add_argument("--time", type=float, default=1.0)
    compile_parser.add_argument("--steps", type=int, default=1)
    compile_parser.set_defaults(handler=cmd_compile)

    verify = subparsers.add_parser("verify", help="verify an encoding JSON file")
    verify.add_argument("encoding_file")
    verify.set_defaults(handler=cmd_verify)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
