"""CNF formula container with named variable allocation and DIMACS I/O.

Literals follow the DIMACS convention: variable ``v`` is the positive
literal ``v`` and its negation is ``-v``.  Variables are allocated through
:meth:`CnfFormula.new_variable` so that every consumer (constraint encoders,
Tseitin gadgets, cardinality counters) shares one pool and the instance
statistics reported in Table 3 of the paper are well-defined.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class CnfFormula:
    """A conjunction of clauses over a shared variable pool."""

    def __init__(self):
        self._num_variables = 0
        self._clauses: list[tuple[int, ...]] = []
        self._names: dict[str, int] = {}

    # -- variables ---------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return self._num_variables

    def new_variable(self, name: str | None = None) -> int:
        """Allocate a fresh variable, optionally registering a unique name."""
        self._num_variables += 1
        variable = self._num_variables
        if name is not None:
            if name in self._names:
                raise ValueError(f"variable name already used: {name!r}")
            self._names[name] = variable
        return variable

    def new_variables(self, count: int, prefix: str | None = None) -> list[int]:
        """Allocate ``count`` fresh variables (named ``prefix[i]`` if given)."""
        if prefix is None:
            return [self.new_variable() for _ in range(count)]
        return [self.new_variable(f"{prefix}[{i}]") for i in range(count)]

    def variable(self, name: str) -> int:
        """Look up a previously named variable."""
        return self._names[name]

    # -- clauses ------------------------------------------------------------

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause (a disjunction of DIMACS literals)."""
        clause = tuple(literals)
        if not clause:
            raise ValueError("empty clause would make the formula trivially UNSAT;"
                             " add a contradiction explicitly if intended")
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            if abs(literal) > self._num_variables:
                raise ValueError(f"literal {literal} references an unallocated variable")
        self._clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def add_unit(self, literal: int) -> None:
        self.add_clause((literal,))

    def clauses(self) -> Iterator[tuple[int, ...]]:
        return iter(self._clauses)

    def average_clause_length(self) -> float:
        """Mean literals per clause — the paper's Table 3 ``#Vars/#Clauses`` column."""
        if not self._clauses:
            return 0.0
        return sum(len(clause) for clause in self._clauses) / len(self._clauses)

    # -- DIMACS ---------------------------------------------------------------

    def to_dimacs(self) -> str:
        """Serialize in standard DIMACS CNF format."""
        lines = [f"p cnf {self._num_variables} {len(self._clauses)}"]
        lines.extend(" ".join(str(lit) for lit in clause) + " 0" for clause in self._clauses)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CnfFormula":
        """Parse a DIMACS CNF document (comments and blank lines ignored)."""
        formula = cls()
        declared_variables = None
        pending: list[int] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed problem line: {line!r}")
                declared_variables = int(parts[2])
                formula.new_variables(declared_variables)
                continue
            for token in line.split():
                literal = int(token)
                if literal == 0:
                    formula.add_clause(pending)
                    pending = []
                else:
                    if declared_variables is None:
                        raise ValueError("clause before problem line")
                    pending.append(literal)
        if pending:
            raise ValueError("trailing clause without terminating 0")
        return formula

    def copy(self) -> "CnfFormula":
        duplicate = CnfFormula()
        duplicate._num_variables = self._num_variables
        duplicate._clauses = list(self._clauses)
        duplicate._names = dict(self._names)
        return duplicate

    def __repr__(self) -> str:
        return f"CnfFormula(variables={self._num_variables}, clauses={len(self._clauses)})"


def evaluate_clause(clause: Sequence[int], assignment: dict[int, bool]) -> bool:
    """True when ``assignment`` (variable -> truth) satisfies the clause."""
    return any(assignment.get(abs(lit), False) == (lit > 0) for lit in clause)


def evaluate_formula(formula: CnfFormula, assignment: dict[int, bool]) -> bool:
    """True when ``assignment`` satisfies every clause of ``formula``."""
    return all(evaluate_clause(clause, assignment) for clause in formula.clauses())
