"""CNF simplification (SatELite-style) with model reconstruction.

Modern SAT solvers owe much of their speed to formula preprocessing
(Eén & Biere 2005): the Tseitin-heavy instances the Fermihedral encoder
emits are full of single-use gate variables, subsumed clauses and
root-level units, and shrinking the formula before search multiplies
every downstream engine — the sequential solver, the incremental descent
ladder and every portfolio worker all propagate over the simplified
clause database.

Techniques, applied to fixpoint (bounded by ``max_rounds``):

* **root unit propagation** — unit clauses fix their variable; satisfied
  clauses are dropped and falsified literals removed everywhere.
* **pure-literal elimination** — a variable occurring with one polarity
  only is the degenerate case of variable elimination below (its
  resolvent set is empty).
* **subsumption and self-subsuming resolution** — a clause ``C ⊆ D``
  deletes ``D``; a clause ``C = {l} ∪ A`` with ``D ⊇ {-l} ∪ A``
  strengthens ``D`` to ``D \\ {-l}``.  Signature-based filtering keeps
  the candidate scans cheap.
* **equivalent-literal substitution** — strongly connected components of
  the binary implication graph are collapsed onto one representative per
  class.  Tseitin instances are full of these: every unit-forced XOR
  output (the encoder's anticommutativity constraints) turns its gate
  definition into a pair of equivalences.
* **bounded variable elimination (NiVER/SatELite)** — a variable whose
  non-tautological resolvent set is no larger than the clause set it
  replaces is resolved away.

**Frozen variables.**  Simplification must not outrun the caller's
interface to the formula: any variable that later appears in solver
*assumptions* (the descent ladder's bound selectors), in incrementally
added clauses (repair blocking clauses over the encoding variables), or
in phase hints must be declared ``frozen``.  Frozen variables are never
eliminated, and when unit propagation fixes one at the root its unit
clause is re-emitted into the simplified formula, so a later assumption
of the opposite polarity still (correctly) answers UNSAT instead of
silently contradicting the reconstruction.

**Model reconstruction.**  Eliminated variables vanish from the
simplified formula, so a model of it says nothing about them (the solver
reports arbitrary values).  :meth:`PreprocessResult.reconstruct` replays
the elimination trail backwards — fixed variables take their forced
value, eliminated variables take whatever value satisfies their saved
clauses — yielding a model of the *original* formula.  Decoding
(:meth:`repro.core.encoder.FermihedralEncoder.decode`) therefore runs on
reconstructed models and never observes the simplification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sat.cnf import CnfFormula

#: Per-variable occurrence cap for the variable-elimination scan; a
#: variable busier than this is never a good elimination candidate and
#: checking it would make the resolvent scan quadratic.
DEFAULT_BVE_OCCURRENCE_LIMIT = 20


@dataclass
class PreprocessStats:
    """What the pipeline did, for logs and benchmark output."""

    original_variables: int = 0
    original_clauses: int = 0
    simplified_clauses: int = 0
    fixed_variables: int = 0
    eliminated_variables: int = 0
    substituted_variables: int = 0
    subsumed_clauses: int = 0
    strengthened_clauses: int = 0
    rounds: int = 0
    unsat: bool = False

    def summary(self) -> str:
        return (
            f"{self.original_clauses} -> {self.simplified_clauses} clauses "
            f"({self.fixed_variables} fixed, "
            f"{self.eliminated_variables} eliminated, "
            f"{self.substituted_variables} substituted, "
            f"{self.subsumed_clauses} subsumed, "
            f"{self.strengthened_clauses} strengthened, "
            f"{self.rounds} rounds)"
        )


class PreprocessResult:
    """A simplified formula plus the recipe for undoing it on models.

    The simplified :attr:`formula` shares the original's variable pool
    (``num_variables`` is unchanged), so literals, assumptions and added
    clauses keep their meaning; only the clause set shrinks.
    """

    def __init__(
        self,
        formula: CnfFormula,
        records: list[tuple],
        stats: PreprocessStats,
        frozen: frozenset[int],
    ):
        self.formula = formula
        self.stats = stats
        self.frozen = frozen
        self._records = records

    @property
    def unsat(self) -> bool:
        """True when preprocessing already refuted the formula."""
        return self.stats.unsat

    def reconstruct(self, model: dict[int, bool]) -> dict[int, bool]:
        """Extend a model of the simplified formula to the original one.

        The input is not mutated.  Values the solver reported for
        eliminated variables are overwritten — they were unconstrained in
        the simplified formula and only the replayed elimination trail
        knows a value consistent with the original clauses.
        """
        extended = dict(model)
        for record in reversed(self._records):
            kind, variable, payload = record
            if kind == "fixed":
                extended[variable] = payload
                continue
            if kind == "equiv":
                representative = extended.get(abs(payload), False)
                extended[variable] = representative if payload > 0 else not representative
                continue
            # Eliminated variable: any saved clause not already satisfied
            # by the other variables forces the polarity that satisfies
            # it; if all are satisfied either value works (False chosen).
            value = False
            for clause in payload:
                satisfied = False
                forced = False
                for literal in clause:
                    other = abs(literal)
                    if other == variable:
                        forced = literal > 0
                        continue
                    if extended.get(other, False) == (literal > 0):
                        satisfied = True
                        break
                if not satisfied:
                    value = forced
                    if value:
                        break
            extended[variable] = value
        return extended


def _signature(clause: Iterable[int]) -> int:
    """64-bit subsumption filter: ``sig(C) & ~sig(D)`` nonzero ⇒ C ⊄ D."""
    sig = 0
    for literal in clause:
        sig |= 1 << ((literal * 2 if literal > 0 else -literal * 2 + 1) % 61)
    return sig


class _Simplifier:
    """Mutable working state of one preprocessing run.

    When ``proof`` is given, every clause the simplifier derives is
    emitted as a DRAT addition *before* the clause it replaces is
    emitted as a deletion, so an independent checker replaying the log
    against the **original** formula always finds the justifying clauses
    still active.  Each technique's additions are RUP by construction:
    strengthened clauses via the unit (or the self-subsuming partner)
    that justified them, substituted clauses via the equivalence
    binaries (emitted for *all* planned pairs before any rewriting, while
    the implication paths that prove them are still intact), elimination
    resolvents via their two parents.  Units are never deleted.
    """

    def __init__(self, formula: CnfFormula, frozen: frozenset[int], proof=None):
        self.num_variables = formula.num_variables
        self.frozen = frozen
        self.proof = proof
        self.clauses: list[set[int] | None] = []
        self.sigs: list[int] = []  # cached subsumption signatures, per index
        self.touched: list[int] = []  # clauses new/changed since last subsumption
        self.occurs: dict[int, set[int]] = {}
        self.fixed: dict[int, bool] = {}
        self.unit_queue: list[int] = []
        self.records: list[tuple] = []
        self.stats = PreprocessStats(
            original_variables=formula.num_variables,
            original_clauses=formula.num_clauses,
        )
        for clause in formula.clauses():
            literals = set(clause)
            if any(-literal in literals for literal in literals):
                continue  # tautology
            if len(literals) == 1:
                self.unit_queue.append(next(iter(literals)))
                continue
            self._add_clause(literals)

    # -- clause bookkeeping ---------------------------------------------------

    def _add_clause(self, literals: set[int]) -> int:
        index = len(self.clauses)
        self.clauses.append(literals)
        self.sigs.append(_signature(literals))
        self.touched.append(index)
        for literal in literals:
            self.occurs.setdefault(literal, set()).add(index)
        return index

    def _remove_clause(self, index: int) -> None:
        literals = self.clauses[index]
        if literals is None:
            return
        self.clauses[index] = None
        for literal in literals:
            bucket = self.occurs.get(literal)
            if bucket is not None:
                bucket.discard(index)

    def _unlink_literal(self, index: int, literal: int) -> None:
        self.clauses[index].discard(literal)
        self.sigs[index] = _signature(self.clauses[index])
        bucket = self.occurs.get(literal)
        if bucket is not None:
            bucket.discard(index)

    # -- unit propagation -----------------------------------------------------

    def propagate_units(self) -> bool:
        """Apply queued root units to fixpoint; False on refutation."""
        proof = self.proof
        while self.unit_queue:
            literal = self.unit_queue.pop()
            variable = abs(literal)
            value = literal > 0
            known = self.fixed.get(variable)
            if known is not None:
                if known != value:
                    if proof is not None:
                        # Both polarities are active units: UP refutes.
                        proof.add(())
                    self.stats.unsat = True
                    return False
                continue
            self.fixed[variable] = value
            self.stats.fixed_variables += 1
            for index in list(self.occurs.get(literal, ())):
                if proof is not None and self.clauses[index] is not None:
                    proof.delete(sorted(self.clauses[index]))
                self._remove_clause(index)
            for index in list(self.occurs.get(-literal, ())):
                old = sorted(self.clauses[index]) if proof is not None else None
                self._unlink_literal(index, -literal)
                remaining = self.clauses[index]
                if not remaining:
                    if proof is not None:
                        proof.add(())
                    self.stats.unsat = True
                    return False
                if proof is not None:
                    proof.add(sorted(remaining))
                    proof.delete(old)
                if len(remaining) == 1:
                    self.unit_queue.append(next(iter(remaining)))
                    # Bookkeeping removal only: the emitted unit addition
                    # stays active in the checker (units are never deleted).
                    self._remove_clause(index)
        return True

    # -- subsumption ----------------------------------------------------------

    def subsumption_round(self) -> bool:
        """Queue-driven backward subsumption + self-subsuming resolution.

        Only clauses created or changed since the previous round are used
        as subsumers (backward subsumption); the first round seeds the
        queue with everything.  Returns True when any clause was removed
        or strengthened.
        """
        changed = False
        proof = self.proof
        queue = [index for index in self.touched if self.clauses[index] is not None]
        self.touched = []
        while queue:
            index = queue.pop()
            clause = self.clauses[index]
            if clause is None:
                continue
            sig = self.sigs[index]
            sigs = self.sigs
            # Scan candidates through the rarest literal's occurrence list.
            pivot = min(clause, key=lambda lit: len(self.occurs.get(lit, ())))
            for other_index in list(self.occurs.get(pivot, ())):
                if other_index == index:
                    continue
                if sig & ~sigs[other_index]:
                    continue
                other = self.clauses[other_index]
                if other is None or len(other) < len(clause):
                    continue
                if clause <= other:
                    if proof is not None:
                        proof.delete(sorted(other))
                    self._remove_clause(other_index)
                    self.stats.subsumed_clauses += 1
                    changed = True
            # Self-subsuming resolution: C = A ∪ {l}, D ⊇ A ∪ {-l}.
            for literal in list(clause):
                rest = clause - {literal}
                rest_sig = _signature(rest)
                for other_index in list(self.occurs.get(-literal, ())):
                    if rest_sig & ~sigs[other_index]:
                        continue
                    other = self.clauses[other_index]
                    if other is None or len(other) < len(clause):
                        continue
                    if rest <= other:
                        old = sorted(other) if proof is not None else None
                        self._unlink_literal(other_index, -literal)
                        self.stats.strengthened_clauses += 1
                        changed = True
                        strengthened = self.clauses[other_index]
                        if proof is not None:
                            proof.add(sorted(strengthened))
                            proof.delete(old)
                        if len(strengthened) == 1:
                            self.unit_queue.append(next(iter(strengthened)))
                            self._remove_clause(other_index)
                        else:
                            queue.append(other_index)
                            self.touched.append(other_index)
                if self.clauses[index] is None:
                    break
        return changed

    # -- equivalent-literal substitution --------------------------------------

    def _binary_implication_graph(self) -> dict[int, list[int]]:
        """Edges ``-a -> b`` and ``-b -> a`` for every binary clause."""
        graph: dict[int, list[int]] = {}
        for clause in self.clauses:
            if clause is None or len(clause) != 2:
                continue
            first, second = clause
            graph.setdefault(-first, []).append(second)
            graph.setdefault(-second, []).append(first)
        return graph

    @staticmethod
    def _strongly_connected(graph: dict[int, list[int]]) -> dict[int, int]:
        """Iterative Tarjan; maps each literal to its component id."""
        index_of: dict[int, int] = {}
        low: dict[int, int] = {}
        component: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        counter = 0
        components = 0
        for root in graph:
            if root in index_of:
                continue
            work = [(root, 0)]
            while work:
                node, edge_index = work[-1]
                if edge_index == 0:
                    index_of[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                successors = graph.get(node, ())
                while edge_index < len(successors):
                    successor = successors[edge_index]
                    edge_index += 1
                    if successor not in index_of:
                        work[-1] = (node, edge_index)
                        work.append((successor, 0))
                        advanced = True
                        break
                    if successor in on_stack:
                        low[node] = min(low[node], index_of[successor])
                if advanced:
                    continue
                work.pop()
                if low[node] == index_of[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component[member] = components
                        if member == node:
                            break
                    components += 1
                if work:
                    parent, _ = work[-1]
                    low[parent] = min(low[parent], low[node])
        return component

    def substitute_equivalences(self) -> bool:
        """Collapse binary-implication SCCs onto one representative each.

        Frozen variables are never rewritten (their literals must keep
        their meaning for later assumptions/clauses); they are preferred
        as representatives instead.  Returns True when any variable was
        substituted.
        """
        graph = self._binary_implication_graph()
        if not graph:
            return False
        component = self._strongly_connected(graph)
        classes: dict[int, list[int]] = {}
        for literal, comp in component.items():
            classes.setdefault(comp, []).append(literal)

        # Phase 1: plan every substitution (and detect refuted classes)
        # before rewriting anything.  Proof emission depends on this
        # split: the equivalence binaries ``v ≡ r`` are RUP through the
        # binary implication paths of the *untouched* clause set, and a
        # substitution performed early would cut the paths later pairs
        # need.
        plans: list[tuple[int, int]] = []  # (variable, replacement)
        substituted: set[int] = set()  # each class appears twice (mirrored)
        for members in classes.values():
            if len(members) < 2:
                continue
            variables = {abs(literal) for literal in members}
            if len(variables) < len(members):
                # v and -v share a component: the formula is refuted.
                if self.proof is not None:
                    contradicted = next(
                        lit for lit in members if -lit in members
                    )
                    self.proof.add((-contradicted,))
                    self.proof.add((contradicted,))
                    self.proof.add(())
                self.stats.unsat = True
                return False
            # Deterministic representative: frozen first, then smallest.
            representative = min(
                members, key=lambda lit: (abs(lit) not in self.frozen, abs(lit), lit < 0)
            )
            for literal in members:
                variable = abs(literal)
                if literal == representative or variable in self.frozen:
                    continue
                if variable in self.fixed or variable in substituted:
                    continue
                substituted.add(variable)
                # literal ≡ representative, so  v ≡ ±representative.
                replacement = representative if literal > 0 else -representative
                plans.append((variable, replacement))
        if self.proof is not None:
            for variable, replacement in plans:
                self.proof.add((-variable, replacement))
                self.proof.add((variable, -replacement))

        # Phase 2: perform the planned rewrites.
        changed = False
        for variable, replacement in plans:
            self.records.append(("equiv", variable, replacement))
            self.stats.substituted_variables += 1
            self._substitute(variable, replacement)
            changed = True
            if self.stats.unsat:
                return changed
        return changed

    def _substitute(self, variable: int, replacement: int) -> None:
        """Rewrite every occurrence of ``variable`` with ``replacement``."""
        proof = self.proof
        for literal, new_literal in ((variable, replacement), (-variable, -replacement)):
            for index in list(self.occurs.get(literal, ())):
                clause = self.clauses[index]
                if clause is None:
                    continue
                old = sorted(clause) if proof is not None else None
                self._unlink_literal(index, literal)
                if new_literal in clause:
                    pass  # duplicate collapses
                elif -new_literal in clause:
                    if proof is not None:
                        proof.delete(old)
                    self._remove_clause(index)  # tautology
                    continue
                else:
                    clause.add(new_literal)
                    self.sigs[index] = _signature(clause)
                    self.occurs.setdefault(new_literal, set()).add(index)
                if proof is not None:
                    # RUP through the equivalence binary lit -> new_literal
                    # emitted before any rewriting, plus the old clause.
                    proof.add(sorted(clause))
                    proof.delete(old)
                if len(clause) == 1:
                    self.unit_queue.append(next(iter(clause)))
                    self._remove_clause(index)
                else:
                    self.touched.append(index)

    # -- bounded variable elimination ----------------------------------------

    def eliminate_variables(self, occurrence_limit: int) -> bool:
        """One NiVER sweep; pure literals fall out as the zero-resolvent
        case.  Returns True when any variable was eliminated."""
        changed = False
        for variable in range(1, self.num_variables + 1):
            if variable in self.frozen or variable in self.fixed:
                continue
            pos = self.occurs.get(variable, set())
            neg = self.occurs.get(-variable, set())
            if not pos and not neg:
                continue
            if len(pos) + len(neg) > occurrence_limit:
                continue
            pos_clauses = [self.clauses[i] for i in pos]
            neg_clauses = [self.clauses[i] for i in neg]
            resolvents: list[set[int]] = []
            acceptable = True
            for positive in pos_clauses:
                for negative in neg_clauses:
                    resolvent = (positive - {variable}) | (negative - {-variable})
                    if any(-literal in resolvent for literal in resolvent):
                        continue
                    resolvents.append(resolvent)
                    if len(resolvents) > len(pos) + len(neg):
                        acceptable = False
                        break
                if not acceptable:
                    break
            if not acceptable:
                continue
            saved = [tuple(sorted(clause)) for clause in pos_clauses + neg_clauses]
            self.records.append(("elim", variable, saved))
            self.stats.eliminated_variables += 1
            if self.proof is not None:
                # Resolvent additions first (each is RUP via its two
                # still-active parents), parent deletions second.
                for resolvent in resolvents:
                    self.proof.add(sorted(resolvent))
                for clause in saved:
                    self.proof.delete(clause)
            for index in list(pos) + list(neg):
                self._remove_clause(index)
            for resolvent in resolvents:
                if len(resolvent) == 1:
                    self.unit_queue.append(next(iter(resolvent)))
                else:
                    self._add_clause(resolvent)
            changed = True
        return changed

    # -- output ---------------------------------------------------------------

    def build_result(self) -> PreprocessResult:
        formula = CnfFormula()
        formula.new_variables(self.num_variables)
        if self.stats.unsat:
            # A refuted instance is represented by an explicit
            # contradiction over the shared pool so any solver built from
            # it answers UNSAT immediately (and assumption literals stay
            # in range).
            if self.num_variables >= 1:
                formula.add_unit(1)
                formula.add_unit(-1)
            self.stats.simplified_clauses = formula.num_clauses
            return PreprocessResult(formula, [], self.stats, self.frozen)
        for variable, value in sorted(self.fixed.items()):
            if variable in self.frozen:
                # The solver must still know the forced value: assumptions
                # and added clauses may mention frozen variables later.
                formula.add_unit(variable if value else -variable)
            else:
                self.records.append(("fixed", variable, value))
        for clause in self.clauses:
            if clause is not None:
                formula.add_clause(sorted(clause))
        self.stats.simplified_clauses = formula.num_clauses
        return PreprocessResult(formula, self.records, self.stats, self.frozen)


def preprocess(
    formula: CnfFormula,
    frozen: "Sequence[int] | Iterable[int]" = (),
    *,
    max_rounds: int = 10,
    bve_occurrence_limit: int = DEFAULT_BVE_OCCURRENCE_LIMIT,
    proof=None,
    telemetry=None,
) -> PreprocessResult:
    """Simplify ``formula``, never touching the ``frozen`` variables.

    Args:
        formula: the instance to simplify (not mutated).
        frozen: variables (or literals — signs are ignored) that must
            survive: everything later used in assumptions, added clauses,
            or phase hints.  Model values of frozen variables are
            identical before and after reconstruction.
        max_rounds: cap on UP → subsumption → elimination fixpoint rounds.
        bve_occurrence_limit: skip eliminating variables with more total
            occurrences than this.
        proof: optional :class:`repro.sat.drat.ProofLog`.  Every
            simplification step is logged as DRAT add/delete lines, so a
            refutation of the *simplified* formula found by a downstream
            solver writing to the same log checks against the *original*
            formula (see :class:`_Simplifier`).
        telemetry: optional :class:`repro.telemetry.Telemetry`.  When
            set, the run is wrapped in a ``preprocess`` span and the
            per-technique removal counts (fixed / eliminated /
            substituted variables, subsumed / strengthened clauses) are
            mirrored into labelled counters after the fixpoint loop.

    Returns a :class:`PreprocessResult`; ``result.formula`` preserves the
    variable pool, ``result.reconstruct`` lifts models back to the
    original formula, and ``result.unsat`` short-circuits refuted inputs.
    """
    frozen_set = frozenset(abs(int(literal)) for literal in frozen)
    simplifier = _Simplifier(formula, frozen_set, proof=proof)
    if telemetry is None:
        from contextlib import nullcontext

        span = nullcontext({})
    else:
        span = telemetry.span("preprocess",
                              variables=formula.num_variables,
                              clauses=formula.num_clauses)
    with span as attrs:
        for _ in range(max_rounds):
            simplifier.stats.rounds += 1
            if not simplifier.propagate_units():
                break
            changed = simplifier.substitute_equivalences()
            if simplifier.stats.unsat or not simplifier.propagate_units():
                break
            changed |= simplifier.subsumption_round()
            if not simplifier.propagate_units():
                break
            changed |= simplifier.eliminate_variables(bve_occurrence_limit)
            if not simplifier.propagate_units():
                break
            if not changed and not simplifier.unit_queue:
                break
        result = simplifier.build_result()
        if telemetry is not None:
            stats = result.stats
            attrs.update(rounds=stats.rounds,
                         simplified_clauses=stats.simplified_clauses)
            removed = telemetry.counter(
                "repro_preprocess_removed_total",
                "variables/clauses removed by the preprocessor, by technique")
            for technique, count in (
                ("fixed_variables", stats.fixed_variables),
                ("eliminated_variables", stats.eliminated_variables),
                ("substituted_variables", stats.substituted_variables),
                ("subsumed_clauses", stats.subsumed_clauses),
                ("strengthened_clauses", stats.strengthened_clauses),
            ):
                if count:
                    removed.labels(technique=technique).inc(count)
            telemetry.counter(
                "repro_preprocess_runs_total", "preprocessor invocations"
            ).inc()
    return result
