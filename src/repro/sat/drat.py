"""DRAT proof emission and an independent RUP/RAT proof checker.

Every optimality claim the compiler makes rests on an UNSAT answer from
our own CDCL solver.  This module makes those answers *auditable*: the
solver (and the preprocessor in front of it) logs every clause it adds
or deletes in DRAT — the standard clause-redundancy certificate format
of Wetzler, Heule & Hunt's DRAT-trim — and a small, stdlib-only checker
re-verifies the refutation with none of the solver's code in the loop.

Three layers live here:

* :class:`ProofLog` — the append-only event sink the solver and
  preprocessor write to.  ``add``/``delete`` record DRAT lines;
  ``axiom`` records clauses injected mid-run through
  ``CdclSolver.add_clause`` (blocking clauses, repairs).  Axioms are
  *hoisted into the checker's premise set* rather than logged as DRAT
  additions: RUP is monotone in the premise set, so a trace that checks
  against ``CNF + axioms`` is a valid refutation of that conjunction,
  which is exactly the formula the solver refuted.
* :class:`ProofTrace` — the self-contained, content-addressed artifact:
  the *original* DIMACS CNF, the assumption literals the refuted call
  was made under, the hoisted axioms, and the DRAT line stream.  An
  UNSAT-under-assumptions answer is certified by placing the assumption
  units on the premise side and refuting the conjunction.
* :func:`check_trace` / :func:`check_drat` — backward RUP/RAT checking
  with lazy core marking: the trace is replayed forward to the first
  empty-clause addition, then walked backward verifying only the
  additions that actually feed the refutation (the "core"), which is
  how real traces verify quickly.

Deletions are trusted, as in every DRAT checker: deleting a clause can
only weaken the premise set, so a refutation that checks *despite* the
deletions still refutes the original formula.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Iterable, Sequence

from repro.sat.cnf import CnfFormula

#: Bumped if the artifact JSON layout changes incompatibly.
PROOF_FORMAT_VERSION = 1


class ProofLog:
    """Append-only DRAT event sink shared by the preprocessor and solver.

    The log is deliberately dumb — two lists — so that emission costs a
    method call and an append, nothing more, and so a portfolio worker
    can ship its log across a pipe as plain tuples.
    """

    __slots__ = ("lines", "axioms")

    def __init__(self):
        #: ``("a", lits)`` additions and ``("d", lits)`` deletions, in order.
        self.lines: list[tuple[str, tuple[int, ...]]] = []
        #: Clauses injected mid-run via ``add_clause`` — premise side.
        self.axioms: list[tuple[int, ...]] = []

    def add(self, literals: Iterable[int]) -> None:
        """Record a clause addition (a learnt or derived clause)."""
        self.lines.append(("a", tuple(literals)))

    def delete(self, literals: Iterable[int]) -> None:
        """Record a clause deletion (reduce-DB, simplification)."""
        self.lines.append(("d", tuple(literals)))

    def axiom(self, literals: Iterable[int]) -> None:
        """Record a clause added to the *problem* mid-run (premise side)."""
        self.axioms.append(tuple(literals))

    def clear(self) -> None:
        self.lines.clear()
        self.axioms.clear()

    def __len__(self) -> int:
        return len(self.lines)


def serialize_drat(lines: Sequence[tuple[str, tuple[int, ...]]]) -> str:
    """Render ``("a"/"d", lits)`` events as standard DRAT text."""
    out = []
    for tag, lits in lines:
        body = " ".join(str(lit) for lit in lits)
        if tag == "d":
            out.append(f"d {body} 0" if body else "d 0")
        else:
            out.append(f"{body} 0" if body else "0")
    return "\n".join(out) + ("\n" if out else "")


def parse_drat(text: str) -> list[tuple[str, tuple[int, ...]]]:
    """Parse DRAT text back into ``("a"/"d", lits)`` events.

    Comments (``c ...``) and blank lines are ignored.  Raises
    :class:`ValueError` on malformed lines — a corrupted artifact must
    be *rejected*, never silently skipped.
    """
    steps: list[tuple[str, tuple[int, ...]]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        tag = "a"
        if line.startswith("d ") or line == "d":
            tag = "d"
            line = line[1:].strip()
        tokens = line.split()
        if not tokens or tokens[-1] != "0":
            raise ValueError(f"DRAT line missing terminating 0: {raw!r}")
        try:
            lits = tuple(int(tok) for tok in tokens[:-1])
        except ValueError as exc:
            raise ValueError(f"malformed DRAT line: {raw!r}") from exc
        if any(lit == 0 for lit in lits):
            raise ValueError(f"interior 0 in DRAT line: {raw!r}")
        steps.append((tag, lits))
    return steps


@dataclasses.dataclass(frozen=True)
class ProofTrace:
    """A self-contained, checkable UNSAT certificate for one solve call.

    ``cnf`` is the *original* formula (before preprocessing) in DIMACS;
    ``assumptions`` are the literals the refuted call assumed (premise
    units); ``axioms`` are clauses injected mid-run (premise side, see
    module docs); ``proof`` is the DRAT line stream ending in the empty
    clause.  ``meta`` carries human-facing context (bound, instance)
    and does not affect checking.
    """

    num_variables: int
    cnf: str
    assumptions: tuple[int, ...] = ()
    axioms: tuple[tuple[int, ...], ...] = ()
    proof: str = ""
    meta: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "proof_format_version": PROOF_FORMAT_VERSION,
            "num_variables": self.num_variables,
            "cnf": self.cnf,
            "assumptions": list(self.assumptions),
            "axioms": [list(clause) for clause in self.axioms],
            "proof": self.proof,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProofTrace":
        version = data.get("proof_format_version")
        if version != PROOF_FORMAT_VERSION:
            raise ValueError(f"unsupported proof format version: {version!r}")
        return cls(
            num_variables=int(data["num_variables"]),
            cnf=data["cnf"],
            assumptions=tuple(int(lit) for lit in data.get("assumptions", ())),
            axioms=tuple(
                tuple(int(lit) for lit in clause)
                for clause in data.get("axioms", ())
            ),
            proof=data.get("proof", ""),
            meta=dict(data.get("meta", {})),
        )

    def sha256(self) -> str:
        """Content address of the artifact (canonical JSON, like cache keys)."""
        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @property
    def num_proof_lines(self) -> int:
        return sum(1 for line in self.proof.splitlines() if line.strip())


def build_trace(
    formula: CnfFormula,
    log: ProofLog,
    assumptions: Iterable[int] = (),
    meta: dict | None = None,
) -> ProofTrace:
    """Package a refutation log into a checkable :class:`ProofTrace`.

    The empty clause is appended here, not emitted by the solver: an
    incremental solver refutes *different assumption sets* against one
    clause database, so the empty clause belongs to the (formula,
    assumptions) pair of the specific refuted call — which is exactly
    what this function binds together.
    """
    lines = list(log.lines)
    lines.append(("a", ()))
    return ProofTrace(
        num_variables=formula.num_variables,
        cnf=formula.to_dimacs(),
        assumptions=tuple(assumptions),
        axioms=tuple(log.axioms),
        proof=serialize_drat(lines),
        meta=dict(meta or {}),
    )


@dataclasses.dataclass(frozen=True)
class ProofCheckResult:
    """Outcome of a checker run: verdict, failure reason, work counters."""

    ok: bool
    reason: str | None = None
    steps: int = 0
    checked_additions: int = 0

    def __bool__(self) -> bool:
        return self.ok


class _DratChecker:
    """Backward RUP/RAT checker with lazy core marking.

    Clauses are id-indexed: premises first, then forward-replayed
    additions.  Unit propagation is occurrence-list based with activity
    filtering — simple, allocation-light, and entirely independent of
    the solver's watched-literal machinery (the point of the exercise).
    """

    def __init__(self, premises: Sequence[tuple[int, ...]]):
        self.clauses: list[tuple[int, ...]] = [tuple(c) for c in premises]
        self.active = bytearray(b"\x01" * len(self.clauses))
        self.occ: dict[int, list[int]] = {}
        self.units: set[int] = set()
        self.empties: set[int] = set()
        for cid, clause in enumerate(self.clauses):
            self._index(cid, clause)
        self.marked: set[int] = set()

    def _index(self, cid: int, clause: tuple[int, ...]) -> None:
        for lit in clause:
            self.occ.setdefault(lit, []).append(cid)
        if len(clause) == 1:
            self.units.add(cid)
        elif not clause:
            self.empties.add(cid)

    def _new_clause(self, clause: tuple[int, ...]) -> int:
        cid = len(self.clauses)
        self.clauses.append(clause)
        self.active.append(1)
        self._index(cid, clause)
        return cid

    def _set_active(self, cid: int, on: bool) -> None:
        self.active[cid] = 1 if on else 0
        if len(self.clauses[cid]) == 1:
            (self.units.add if on else self.units.discard)(cid)

    # -- unit propagation --------------------------------------------------

    def _propagate(self, seeds: Iterable[int]) -> tuple[int | None, dict, dict]:
        """UP from ``seeds`` (assumed true) plus all active unit clauses.

        Returns ``(conflict_clause_id, value, reason)``; the conflict id
        is ``None`` when a fixpoint is reached without conflict.  Seeds
        have reason ``None``; propagated literals record the clause that
        forced them, which is what core marking walks.
        """
        value: dict[int, bool] = {}
        reason: dict[int, int | None] = {}
        trail: list[int] = []

        for cid in self.empties:
            if self.active[cid]:
                return cid, value, reason

        def assign(lit: int, why: int | None) -> int | None:
            var = abs(lit)
            want = lit > 0
            have = value.get(var)
            if have is None:
                value[var] = want
                reason[var] = why
                trail.append(lit)
                return None
            if have == want:
                return None
            return why if why is not None else reason.get(var)

        for lit in seeds:
            conflict = assign(lit, None)
            if conflict is not None:
                return conflict, value, reason
        for cid in self.units:
            if not self.active[cid]:
                continue
            conflict = assign(self.clauses[cid][0], cid)
            if conflict is not None:
                return conflict, value, reason
        head = 0
        while head < len(trail):
            lit = trail[head]
            head += 1
            for cid in self.occ.get(-lit, ()):
                if not self.active[cid]:
                    continue
                clause = self.clauses[cid]
                unassigned = None
                open_count = 0
                satisfied = False
                for other in clause:
                    have = value.get(abs(other))
                    if have is None:
                        unassigned = other
                        open_count += 1
                        if open_count > 1:
                            break
                    elif have == (other > 0):
                        satisfied = True
                        break
                if satisfied or open_count > 1:
                    continue
                if open_count == 0:
                    return cid, value, reason
                conflict = assign(unassigned, cid)
                if conflict is not None:
                    return conflict, value, reason
        return None, value, reason

    def _mark_core(self, conflict: int, reason: dict[int, int | None]) -> None:
        stack = [conflict]
        while stack:
            cid = stack.pop()
            if cid in self.marked:
                continue
            self.marked.add(cid)
            for lit in self.clauses[cid]:
                why = reason.get(abs(lit))
                if why is not None and why not in self.marked:
                    stack.append(why)

    def _check_rup(self, lits: tuple[int, ...]) -> bool:
        seen = set(lits)
        if any(-lit in seen for lit in seen):
            return True  # tautologies are redundant unconditionally
        conflict, _, reason = self._propagate([-lit for lit in lits])
        if conflict is None:
            return False
        self._mark_core(conflict, reason)
        return True

    def _check_rat(self, lits: tuple[int, ...]) -> bool:
        """RAT on the first literal, per the DRAT convention."""
        if not lits:
            return False
        pivot = lits[0]
        rest = lits[1:]
        for cid in self.occ.get(-pivot, ()):
            if not self.active[cid]:
                continue
            other = tuple(l for l in self.clauses[cid] if l != -pivot)
            resolvent = lits + other
            seen = set(resolvent)
            if any(-l in seen for l in seen):
                continue  # tautological resolvent
            if not self._check_rup(tuple(dict.fromkeys(rest + other))):
                return False
            self.marked.add(cid)
        return True

    # -- main drive --------------------------------------------------------

    def run(self, steps: Sequence[tuple[str, tuple[int, ...]]]) -> ProofCheckResult:
        by_content: dict[tuple[int, ...], list[int]] = {}
        for cid, clause in enumerate(self.clauses):
            by_content.setdefault(tuple(sorted(set(clause))), []).append(cid)

        # Forward replay, truncated at the first empty-clause addition —
        # the preprocessor may already have derived the refutation, in
        # which case the solver's lines after it are irrelevant.
        replay: list[tuple[str, int | None]] = []
        found_empty = False
        for tag, lits in steps:
            if tag == "a":
                if not lits:
                    found_empty = True
                    break
                cid = self._new_clause(lits)
                by_content.setdefault(tuple(sorted(set(lits))), []).append(cid)
                replay.append(("a", cid))
            else:
                key = tuple(sorted(set(lits)))
                stack = by_content.get(key)
                cid = None
                if stack:
                    cid = stack.pop()
                    self._set_active(cid, False)
                replay.append(("d", cid))
        if not found_empty:
            return ProofCheckResult(
                False, "proof does not derive the empty clause", len(steps), 0
            )

        # The refutation itself: UP on the final active set must conflict.
        conflict, _, reason = self._propagate(())
        if conflict is None:
            return ProofCheckResult(
                False,
                "empty clause is not implied by unit propagation",
                len(steps),
                0,
            )
        self._mark_core(conflict, reason)

        # Backward pass: verify only core-marked additions, growing the
        # core as each verification marks its own antecedents.
        checked = 0
        for tag, cid in reversed(replay):
            if tag == "d":
                if cid is not None:
                    self._set_active(cid, True)
                continue
            self._set_active(cid, False)
            if cid not in self.marked:
                continue
            checked += 1
            lits = self.clauses[cid]
            if not self._check_rup(lits) and not self._check_rat(lits):
                return ProofCheckResult(
                    False,
                    "clause {} is neither RUP nor RAT".format(
                        " ".join(map(str, lits))
                    ),
                    len(steps),
                    checked,
                )
        return ProofCheckResult(True, None, len(steps), checked)


def check_drat(
    premises: Sequence[Sequence[int]],
    steps: Sequence[tuple[str, tuple[int, ...]]],
) -> ProofCheckResult:
    """Check a DRAT refutation of ``premises`` (clauses, axioms, units)."""
    return _DratChecker([tuple(c) for c in premises]).run(steps)


def check_trace(trace: ProofTrace) -> ProofCheckResult:
    """Validate and check a :class:`ProofTrace` artifact end to end.

    Structural validation (literal ranges, DRAT syntax) happens first so
    a corrupted artifact is rejected with a reason rather than crashing
    or — worse — vacuously passing.
    """
    try:
        formula = CnfFormula.from_dimacs(trace.cnf)
    except (ValueError, KeyError) as exc:
        return ProofCheckResult(False, f"malformed CNF: {exc}")
    if formula.num_variables != trace.num_variables:
        return ProofCheckResult(
            False,
            "num_variables disagrees with the embedded CNF "
            f"({trace.num_variables} vs {formula.num_variables})",
        )
    limit = trace.num_variables

    def in_range(lits: Iterable[int]) -> bool:
        return all(lit != 0 and abs(lit) <= limit for lit in lits)

    if not in_range(trace.assumptions):
        return ProofCheckResult(False, "assumption literal out of range")
    for clause in trace.axioms:
        if not clause or not in_range(clause):
            return ProofCheckResult(False, "axiom clause malformed")
    try:
        steps = parse_drat(trace.proof)
    except ValueError as exc:
        return ProofCheckResult(False, f"malformed DRAT: {exc}")
    for _, lits in steps:
        if not in_range(lits):
            return ProofCheckResult(False, "proof literal out of range")

    premises: list[tuple[int, ...]] = list(formula.clauses())
    premises.extend(trace.axioms)
    premises.extend((lit,) for lit in trace.assumptions)
    result = check_drat(premises, steps)
    return dataclasses.replace(result, steps=len(steps))
