"""Conflict-driven clause learning (CDCL) SAT solver.

This is the stand-in for Kissat/CaDiCaL in the paper's toolchain — this
environment has no external solver, so the substrate is built from scratch.
The implementation follows the MiniSat architecture: two-literal watches,
first-UIP conflict analysis, VSIDS branching with phase saving, Luby
restarts and activity/LBD-based learned-clause reduction.  It is a complete
solver: given enough budget it returns ``SAT`` with a model or ``UNSAT``;
with a conflict or wall-clock budget it may return ``UNKNOWN``, which the
descent loop in :mod:`repro.core.descent` treats as "stop tightening".

The solver is **incremental**: :meth:`CdclSolver.solve` may be called many
times on one instance, optionally under *assumptions* (literals held fixed
for that call only, MiniSat's ``solve(assumps)``), and clauses may be added
between calls with :meth:`CdclSolver.add_clause`.  Learned clauses, saved
phases and branching activities all survive across calls, which is what
makes the weight-descent ladder in :mod:`repro.core.descent` cheap: one
CNF, one clause database, a tightening bound expressed as a one-literal
assumption per step.

Branching, restarts and phase polarity are parameterizable so a portfolio
(:mod:`repro.parallel.portfolio`) can race diversified copies of the same
instance; the defaults reproduce the original single-configuration solver
exactly.

Hot-loop layout — flat, not object-per-clause
---------------------------------------------

Propagation dominates solve time, so the clause database is a single
contiguous ``list[int]`` arena (:attr:`CdclSolver.db`) instead of per-clause
Python objects.  A clause is referenced by its arena offset (*cref*):
``db[cref]`` is a packed header ``size << 1 | learned`` and
``db[cref + 1 : cref + 1 + size]`` are the encoded literals, with the two
watched literals in slots 0 and 1.  Watch lists are flat, too: for every
encoded literal, ``watches[lit]`` is ``[cref0, blocker0, cref1, blocker1,
...]`` where the *blocker* is some other literal of the clause (usually the
other watch) — when the blocker is already true the clause is satisfied and
the propagation loop skips it without ever touching the arena, which is the
common case.  Literal truth values live in a flat ``bytearray``
(:attr:`CdclSolver.assign`, ``0`` free / ``1`` true / ``2`` false) indexed
by encoded literal.  Clause activities and LBD scores — touched only on
conflicts — live in side dicts keyed by cref; learned-clause reduction
tombstones dead crefs and compacts the arena when more than half of it is
garbage.

Binary clauses — the bulk of a Tseitin-heavy instance — never enter the
watch machinery at all.  A clause ``(a, b)`` becomes two implication-list
entries: ``bins[¬a]`` contains ``b`` and ``bins[¬b]`` contains ``a``
(indexed by the falsified encoded literal), so propagating them is one
array scan with no relocation and no arena traffic.  Their *reasons* are
encoded in-band as negative values (``reason = -other_literal - 1``), and
a binary conflict is materialized into a fixed two-literal scratch slot of
the arena (``cref == 1``) for conflict analysis to consume.

Literals are DIMACS integers at the API boundary and are encoded internally
as ``2*v`` (positive) / ``2*v + 1`` (negative) for array indexing.
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass, field

from repro import chaos
from repro.sat.cnf import CnfFormula

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"

_ACTIVITY_RESCALE = 1e100
_ACTIVITY_DECAY = 0.95
_RESTART_BASE = 128

#: :attr:`CdclSolver.assign` cell states (indexed by encoded literal).
_FREE, _TRUE, _FALSE = 0, 1, 2


@dataclass(frozen=True)
class SolverStats:
    """Search-effort counters shared by every layer that reports them.

    One vocabulary across :class:`SolveResult`, descent steps, and
    portfolio worker replies; addition aggregates contributions.
    """

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0

    def __add__(self, other: "SolverStats") -> "SolverStats":
        return SolverStats(
            conflicts=self.conflicts + other.conflicts,
            decisions=self.decisions + other.decisions,
            propagations=self.propagations + other.propagations,
            restarts=self.restarts + other.restarts,
        )

    def as_dict(self) -> dict:
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
        }


@dataclass
class SolveResult:
    """Outcome of a solver run.

    ``under_assumptions`` distinguishes an ``UNSAT`` that only holds for
    the assumption set of that call from a proof that the formula itself
    is unsatisfiable (``False``).  The counters are per-call, not
    lifetime: an incremental solver resets them at each :meth:`solve`.
    """

    status: str
    model: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)
    elapsed_s: float = 0.0
    under_assumptions: bool = False
    learned_clauses: int = 0

    @property
    def conflicts(self) -> int:
        return self.stats.conflicts

    @property
    def decisions(self) -> int:
        return self.stats.decisions

    @property
    def propagations(self) -> int:
        return self.stats.propagations

    @property
    def restarts(self) -> int:
        return self.stats.restarts

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT


def luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-based ``index``)."""
    if index < 1:
        raise ValueError("luby index is 1-based")
    position = index - 1
    size = 1
    exponent = 0
    while size < position + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != position:
        size = (size - 1) >> 1
        exponent -= 1
        position %= size
    return 1 << exponent


class CdclSolver:
    """Incremental CDCL solver over a :class:`CnfFormula`.

    Args:
        formula: the CNF instance; not mutated.
        seed_phases: optional initial saved phases ``{variable: bool}`` —
            warm-starting descent iterations near the previous model.
        restart_base: Luby restart multiplier (conflicts per unit).
        activity_decay: VSIDS decay factor in ``(0, 1)``.
        phase_default: polarity branched first for variables without a
            saved phase (``False`` reproduces the original solver).
        random_seed: seed for the random-branching RNG; ``None`` disables
            random branching regardless of ``random_branch_freq``.
        random_branch_freq: probability a decision picks a uniformly
            random unassigned variable instead of the VSIDS maximum.
        proof: optional :class:`repro.sat.drat.ProofLog`.  When set, every
            learnt clause is logged as a DRAT addition, every clause the
            reduction pass drops as a DRAT deletion, and every clause
            injected through :meth:`add_clause` as a premise axiom — an
            UNSAT answer then has a complete, independently checkable
            refutation (see :mod:`repro.sat.drat`).  ``None`` (the
            default) keeps emission entirely out of the hot path.
        telemetry: optional :class:`repro.telemetry.Telemetry`.  When
            set, the solver mirrors its counters (conflicts, decisions,
            propagations, restarts) into the metrics registry and keeps
            a learned-DB-size gauge fresh — sampled only at restart
            boundaries and call exit, never inside the inner loop, so
            the overhead discipline matches proof logging: ``None``
            costs nothing.

    The four tuning knobs exist for portfolio diversification
    (:mod:`repro.parallel.portfolio`); all defaults together are the
    reference configuration.
    """

    def __init__(
        self,
        formula: CnfFormula,
        seed_phases: dict[int, bool] | None = None,
        *,
        restart_base: int = _RESTART_BASE,
        activity_decay: float = _ACTIVITY_DECAY,
        phase_default: bool = False,
        random_seed: int | None = None,
        random_branch_freq: float = 0.0,
        proof=None,
        telemetry=None,
    ):
        self.proof = proof
        self.telemetry = telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            self._tele_conflicts = metrics.counter(
                "repro_solver_conflicts_total", "CDCL conflicts")
            self._tele_decisions = metrics.counter(
                "repro_solver_decisions_total", "CDCL decisions")
            self._tele_propagations = metrics.counter(
                "repro_solver_propagations_total", "CDCL unit propagations")
            self._tele_restarts = metrics.counter(
                "repro_solver_restarts_total", "CDCL restarts")
            self._tele_learned = metrics.gauge(
                "repro_solver_learned_clauses",
                "learned clauses currently kept")
            self._tele_rate = metrics.gauge(
                "repro_solver_conflict_rate",
                "conflicts per second over the most recent solve call")
            self._tele_sampled = [0, 0, 0, 0]
        self.num_vars = formula.num_variables
        n = self.num_vars
        self.assign = bytearray(2 * n + 2)    # per encoded literal: _FREE/_TRUE/_FALSE
        self.level = [0] * (n + 1)
        self.reason = [0] * (n + 1)           # cref per variable; 0 = no reason
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.watches: list[list[int]] = [[] for _ in range(2 * n + 2)]
        self.activity = [0.0] * (n + 1)
        self.var_inc = 1.0
        self.saved_phase = [phase_default] * (n + 1)
        # Variables that appear in no clause need never be decided: models
        # report their saved phase directly.  Preprocessed instances leave
        # many eliminated variables in the pool (literal numbering must
        # survive), so branching only over constrained variables keeps the
        # search space at the simplified instance's true size.
        self.in_use = bytearray(n + 1)
        self.order_heap: list[tuple[float, int]] = []
        # Arena cell 0 is a sentinel ("no reason"); cells 1..3 are the
        # scratch clause binary conflicts are materialized into.
        self.db: list[int] = [0, 2 << 1, 0, 0]
        self.bins: list[list[int]] = [[] for _ in range(2 * n + 2)]
        self.clauses: list[int] = []          # problem crefs (3+ literals)
        self.num_problem_clauses = 0          # binaries included
        self.learned: list[int] = []          # learned crefs (3+ literals)
        self.learned_binaries = 0
        self.c_act: dict[int, float] = {}     # learned-clause activities
        self.c_lbd: dict[int, int] = {}       # learned-clause LBD scores
        self._garbage = 0                     # tombstoned arena cells
        self.clause_inc = 1.0
        self.root_conflict = False
        self.propagation_count = 0
        self.restart_base = restart_base
        self.activity_decay = activity_decay
        if not 0.0 <= random_branch_freq <= 1.0:
            raise ValueError("random_branch_freq must lie in [0, 1]")
        self.random_branch_freq = random_branch_freq if random_seed is not None else 0.0
        self._rng = random.Random(random_seed) if random_seed is not None else None

        if seed_phases:
            for variable, phase in seed_phases.items():
                if 1 <= variable <= n:
                    self.saved_phase[variable] = phase

        for clause_lits in formula.clauses():
            self._add_problem_clause(clause_lits)

    # -- incremental interface -------------------------------------------------

    def add_clause(self, literals) -> None:
        """Add one DIMACS clause to the live instance (incremental use).

        Valid between :meth:`solve` calls: the solver backtracks to the
        root level, installs the clause, and performs any root-level
        propagation it triggers.  Clauses over variables the solver does
        not know are rejected — the variable pool is fixed at
        construction.
        """
        clause = list(literals)
        for literal in clause:
            if literal == 0 or abs(literal) > self.num_vars:
                raise ValueError(f"literal {literal} is not in this solver's pool")
        if self.proof is not None:
            # Mid-run problem clauses (blocking clauses, repairs) join the
            # checker's premise set: RUP is monotone in the premises, so
            # the trace refutes exactly the conjunction the solver saw.
            self.proof.axiom(clause)
        self._backtrack(0)
        self._add_problem_clause(clause)

    def set_phases(self, phases: dict[int, bool]) -> None:
        """Overwrite saved phases (warm-start hints) for the given variables."""
        for variable, phase in phases.items():
            if 1 <= variable <= self.num_vars:
                self.saved_phase[variable] = phase

    # -- literal helpers ------------------------------------------------------

    @staticmethod
    def _encode(literal: int) -> int:
        return (literal << 1) if literal > 0 else ((-literal) << 1) | 1

    @staticmethod
    def _decode(encoded: int) -> int:
        return -(encoded >> 1) if encoded & 1 else (encoded >> 1)

    # -- clause arena ----------------------------------------------------------

    def _alloc(self, lits: list[int], learned: bool) -> int:
        db = self.db
        cref = len(db)
        db.append(len(lits) << 1 | int(learned))
        db.extend(lits)
        return cref

    def _mark_used(self, encoded: int) -> None:
        variable = encoded >> 1
        if not self.in_use[variable]:
            self.in_use[variable] = 1
            heapq.heappush(self.order_heap, (-self.activity[variable], variable))

    def _watch(self, cref: int, lit0: int, lit1: int) -> None:
        watch = self.watches[lit0]
        watch.append(cref)
        watch.append(lit1)
        watch = self.watches[lit1]
        watch.append(cref)
        watch.append(lit0)

    # -- setup ------------------------------------------------------------------

    def _add_problem_clause(self, dimacs_lits) -> None:
        seen: dict[int, int] = {}
        lits: list[int] = []
        for literal in dimacs_lits:
            encoded = self._encode(literal)
            variable = encoded >> 1
            previous = seen.get(variable)
            if previous is None:
                seen[variable] = encoded
                lits.append(encoded)
            elif previous != encoded:
                return  # tautology: v OR NOT v
        # Drop root-falsified literals eagerly; keep semantics identical.
        assign = self.assign
        level = self.level
        lits = [lit for lit in lits if not (assign[lit] == _FALSE and level[lit >> 1] == 0)]
        if any(assign[lit] == _TRUE and level[lit >> 1] == 0 for lit in lits):
            return
        if not lits:
            self.root_conflict = True
            return
        for lit in lits:
            self._mark_used(lit)
        if len(lits) == 1:
            if assign[lits[0]] == _FALSE:
                self.root_conflict = True
            elif assign[lits[0]] == _FREE:
                self._enqueue(lits[0], 0)
                if self._propagate():
                    self.root_conflict = True
            return
        self.num_problem_clauses += 1
        if len(lits) == 2:
            # ``bins`` is indexed by the falsified in-clause literal.
            self.bins[lits[0]].append(lits[1])
            self.bins[lits[1]].append(lits[0])
            return
        cref = self._alloc(lits, learned=False)
        self.clauses.append(cref)
        self._watch(cref, lits[0], lits[1])

    # -- assignment / propagation --------------------------------------------------

    def _enqueue(self, encoded: int, reason: int) -> None:
        variable = encoded >> 1
        self.assign[encoded] = _TRUE
        self.assign[encoded ^ 1] = _FALSE
        self.level[variable] = len(self.trail_lim)
        self.reason[variable] = reason
        self.trail.append(encoded)

    # repro-lint: hot-path
    def _propagate(self) -> int:
        """Propagate the trail to fixpoint; returns a conflict cref or 0."""
        db = self.db
        assign = self.assign
        watches = self.watches
        bins = self.bins
        trail = self.trail
        level = self.level
        reason = self.reason
        current_level = len(self.trail_lim)
        qhead = self.qhead
        propagations = 0
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            propagations += 1
            falsified = lit ^ 1
            # Binary implications first: cheapest, and any unit they force
            # prunes the long-clause scan below.
            for implied in bins[falsified]:
                value = assign[implied]
                if value == _TRUE:
                    continue
                if value == _FALSE:
                    db[2] = implied
                    db[3] = falsified
                    self.qhead = qhead
                    self.propagation_count += propagations
                    return 1
                variable = implied >> 1
                assign[implied] = _TRUE
                assign[implied ^ 1] = _FALSE
                level[variable] = current_level
                reason[variable] = -falsified - 1
                trail.append(implied)
            ws = watches[falsified]
            i = j = 0
            end = len(ws)
            while i < end:
                cref = ws[i]
                blocker = ws[i + 1]
                if assign[blocker] == _TRUE:
                    ws[j] = cref
                    ws[j + 1] = blocker
                    j += 2
                    i += 2
                    continue
                base = cref + 1
                first = db[base]
                if first == falsified:
                    first = db[base + 1]
                    db[base] = first
                    db[base + 1] = falsified
                if assign[first] == _TRUE:
                    ws[j] = cref
                    ws[j + 1] = first
                    j += 2
                    i += 2
                    continue
                stop = base + (db[cref] >> 1)
                k = base + 2
                moved = False
                while k < stop:
                    other = db[k]
                    if assign[other] != _FALSE:
                        db[base + 1] = other
                        db[k] = falsified
                        moved_watch = watches[other]
                        moved_watch.append(cref)
                        moved_watch.append(first)
                        moved = True
                        break
                    k += 1
                if moved:
                    i += 2
                    continue
                ws[j] = cref
                ws[j + 1] = first
                j += 2
                i += 2
                if assign[first] == _FALSE:
                    # Conflict: keep the remaining watchers and report.
                    while i < end:
                        ws[j] = ws[i]
                        ws[j + 1] = ws[i + 1]
                        j += 2
                        i += 2
                    del ws[j:]
                    self.qhead = qhead
                    self.propagation_count += propagations
                    return cref
                variable = first >> 1
                assign[first] = _TRUE
                assign[first ^ 1] = _FALSE
                level[variable] = current_level
                reason[variable] = cref
                trail.append(first)
            del ws[j:]
        self.qhead = qhead
        self.propagation_count += propagations
        return 0

    # -- branching ------------------------------------------------------------------

    def _bump_variable(self, variable: int) -> None:
        self.activity[variable] += self.var_inc
        if self.activity[variable] > _ACTIVITY_RESCALE:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        heapq.heappush(self.order_heap, (-self.activity[variable], variable))

    def _decay_activities(self) -> None:
        self.var_inc /= self.activity_decay

    def _pick_branch_variable(self) -> int | None:
        if self._rng is not None and self._rng.random() < self.random_branch_freq:
            # Diversification: a bounded number of uniform draws; falls
            # through to VSIDS when they all land on assigned variables.
            for _ in range(8):
                variable = self._rng.randint(1, self.num_vars)
                if self.assign[variable << 1] == _FREE and self.in_use[variable]:
                    return variable
        while self.order_heap:
            _, variable = heapq.heappop(self.order_heap)
            if self.assign[variable << 1] == _FREE:
                return variable
        for variable in range(1, self.num_vars + 1):
            if self.assign[variable << 1] == _FREE and self.in_use[variable]:
                return variable
        return None

    # -- conflict analysis --------------------------------------------------------------

    # repro-lint: hot-path
    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP analysis with clause minimization.

        Returns (learnt clause, backtrack level).
        """
        db = self.db
        level = self.level
        reason = self.reason
        learnt: list[int] = [0]
        seen = bytearray(self.num_vars + 1)
        current_level = len(self.trail_lim)
        path_count = 0
        resolved_lit = -1
        index = len(self.trail) - 1
        cref = conflict

        while True:
            if cref < 0:
                # Implicit binary reason: lits[1:] is the single stored
                # literal (lits[0] is the implied literal, skipped).
                antecedents = (-cref - 1,)
            else:
                header = db[cref]
                if header & 1:
                    self.c_act[cref] += self.clause_inc
                start = cref + 1 if resolved_lit == -1 else cref + 2
                antecedents = db[start:cref + 1 + (header >> 1)]
            for encoded in antecedents:
                variable = encoded >> 1
                if not seen[variable] and level[variable] > 0:
                    seen[variable] = 1
                    self._bump_variable(variable)
                    if level[variable] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(encoded)
            while not seen[self.trail[index] >> 1]:
                index -= 1
            resolved_lit = self.trail[index]
            variable = resolved_lit >> 1
            path_count -= 1
            index -= 1
            if path_count <= 0:
                break
            cref = reason[variable]

        learnt[0] = resolved_lit ^ 1

        # Minimization: drop literals whose reasons lie entirely inside the
        # clause (MiniSat's recursive litRedundant with abstract levels).
        abstract_levels = 0
        for encoded in learnt[1:]:
            abstract_levels |= 1 << (level[encoded >> 1] & 31)
        minimized = [learnt[0]]
        for encoded in learnt[1:]:
            if reason[encoded >> 1] == 0 or not self._literal_redundant(
                encoded, seen, abstract_levels
            ):
                minimized.append(encoded)
        learnt = minimized

        if len(learnt) == 1:
            return learnt, 0
        # Find the second-highest decision level and watch that literal.
        max_index = 1
        for k in range(2, len(learnt)):
            if level[learnt[k] >> 1] > level[learnt[max_index] >> 1]:
                max_index = k
        learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
        return learnt, level[learnt[1] >> 1]

    def _literal_redundant(self, literal: int, seen: bytearray, abstract_levels: int) -> bool:
        """True when ``literal``'s implication closure lies inside the learnt
        clause — it can then be removed without weakening the clause."""
        db = self.db
        level = self.level
        reason = self.reason
        stack = [literal]
        newly_marked: list[int] = []
        while stack:
            top = stack.pop()
            cref = reason[top >> 1]
            if cref < 0:
                antecedents = (-cref - 1,)
            else:
                antecedents = db[cref + 2:cref + 1 + (db[cref] >> 1)]
            for encoded in antecedents:
                variable = encoded >> 1
                if seen[variable] or level[variable] == 0:
                    continue
                if (
                    reason[variable] != 0
                    and (1 << (level[variable] & 31)) & abstract_levels
                ):
                    seen[variable] = 1
                    newly_marked.append(variable)
                    stack.append(encoded)
                else:
                    for marked in newly_marked:
                        seen[marked] = 0
                    return False
        return True

    def _backtrack(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        boundary = self.trail_lim[target_level]
        assign = self.assign
        for encoded in reversed(self.trail[boundary:]):
            variable = encoded >> 1
            assign[encoded] = _FREE
            assign[encoded ^ 1] = _FREE
            self.reason[variable] = 0
            self.saved_phase[variable] = (encoded & 1) == 0
            heapq.heappush(self.order_heap, (-self.activity[variable], variable))
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    def _record_learnt(self, learnt: list[int]) -> None:
        if self.proof is not None:
            # First-UIP clauses (minimized included) are RUP against the
            # clause set at learn time, assumptions never resolved in —
            # the emission order alone makes the trace checkable.
            decode = self._decode
            self.proof.add([decode(encoded) for encoded in learnt])
        if len(learnt) == 1:
            self._enqueue(learnt[0], 0)
            return
        if len(learnt) == 2:
            # Learned binaries join the implication lists permanently —
            # they are exactly the LBD <= 2 clauses reduction never drops.
            self.bins[learnt[0]].append(learnt[1])
            self.bins[learnt[1]].append(learnt[0])
            self.learned_binaries += 1
            self._enqueue(learnt[0], -learnt[1] - 1)
            return
        cref = self._alloc(learnt, learned=True)
        level = self.level
        self.c_act[cref] = 0.0
        self.c_lbd[cref] = len({level[encoded >> 1] for encoded in learnt})
        self.learned.append(cref)
        self._watch(cref, learnt[0], learnt[1])
        self._enqueue(learnt[0], cref)

    def _reduce_learned(self) -> None:
        locked = {self.reason[encoded >> 1] for encoded in self.trail}
        locked.discard(0)
        c_act = self.c_act
        c_lbd = self.c_lbd
        self.learned.sort(key=lambda cref: (c_lbd[cref], -c_act[cref]))
        keep_count = len(self.learned) // 2
        keep, drop = self.learned[:keep_count], self.learned[keep_count:]
        survivors = [cref for cref in drop if cref in locked or c_lbd[cref] <= 2]
        removed = {cref for cref in drop if cref not in locked and c_lbd[cref] > 2}
        self.learned = keep + survivors
        if not removed:
            return
        db = self.db
        if self.proof is not None:
            decode = self._decode
            for cref in sorted(removed):
                size = db[cref] >> 1
                self.proof.delete(
                    [decode(encoded) for encoded in db[cref + 1:cref + 1 + size]]
                )
        for watch_list in self.watches:
            j = 0
            for i in range(0, len(watch_list), 2):
                cref = watch_list[i]
                if cref not in removed:
                    watch_list[j] = cref
                    watch_list[j + 1] = watch_list[i + 1]
                    j += 2
            del watch_list[j:]
        for cref in removed:
            self._garbage += (db[cref] >> 1) + 1
            del c_act[cref]
            del c_lbd[cref]
        if 2 * self._garbage > len(db):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the arena without tombstoned clauses, remapping crefs."""
        old_db = self.db
        new_db = old_db[:4]  # sentinel + binary-conflict scratch slot
        mapping: dict[int, int] = {0: 0}
        for group in (self.clauses, self.learned):
            for index, cref in enumerate(group):
                size = old_db[cref] >> 1
                new_cref = len(new_db)
                mapping[cref] = new_cref
                new_db.extend(old_db[cref:cref + 1 + size])
                group[index] = new_cref
        self.db = new_db
        self._garbage = 0
        self.c_act = {mapping[cref]: act for cref, act in self.c_act.items()}
        self.c_lbd = {mapping[cref]: lbd for cref, lbd in self.c_lbd.items()}
        # Negative entries are in-band binary reasons; they name literals,
        # not arena offsets, and survive compaction unchanged.
        self.reason = [r if r <= 0 else mapping[r] for r in self.reason]
        for watch_list in self.watches:
            for i in range(0, len(watch_list), 2):
                watch_list[i] = mapping[watch_list[i]]

    def _sample_telemetry(self, conflicts: int, decisions: int,
                          restarts: int) -> None:
        """Mirror counter deltas since the last sample into the registry.

        Called at restart boundaries and call exit only — the inner
        propagate/analyze loop never touches telemetry.
        """
        last = self._tele_sampled
        if conflicts > last[0]:
            self._tele_conflicts.inc(conflicts - last[0])
        if decisions > last[1]:
            self._tele_decisions.inc(decisions - last[1])
        if self.propagation_count > last[2]:
            self._tele_propagations.inc(self.propagation_count - last[2])
        if restarts > last[3]:
            self._tele_restarts.inc(restarts - last[3])
        self._tele_learned.set(len(self.learned) + self.learned_binaries)
        self._tele_sampled = [conflicts, decisions, self.propagation_count,
                              restarts]

    # -- main loop -----------------------------------------------------------------------

    # repro-lint: hot-path
    def solve(
        self,
        max_conflicts: int | None = None,
        time_budget_s: float | None = None,
        assumptions: "list[int] | tuple[int, ...] | None" = None,
    ) -> SolveResult:
        """Run the search until SAT/UNSAT or a budget is exhausted.

        May be called repeatedly on one instance; learned clauses, phases
        and activities carry over, so related calls get cheaper.

        Args:
            max_conflicts: per-call conflict budget (``None`` unlimited).
            time_budget_s: per-call wall-clock budget.  Note that budgets
                make the *stopping point* wall-clock-dependent; conflict
                budgets keep the call fully deterministic.
            assumptions: DIMACS literals held true for this call only.
                ``UNSAT`` with ``under_assumptions=True`` means no model
                extends the assumptions; the formula itself may still be
                satisfiable.  A model returned under assumptions always
                satisfies them.
        """
        # One solve call is one descent rung: ``solver.slice`` is the fault
        # point for dying (or failing) mid-descent.  In kill mode the hit
        # counter is per-process, so a respawned worker gets a fresh budget
        # of rungs — exactly what lets a checkpoint-resumed retry converge.
        chaos.inject("solver.slice", telemetry=self.telemetry)
        start = time.monotonic()
        deadline = None if time_budget_s is None else start + time_budget_s
        self.propagation_count = 0
        if self.telemetry is not None:
            self._tele_sampled = [0, 0, 0, 0]
        conflicts = 0
        decisions = 0
        restarts = 0
        max_learned = max(4000, 2 * self.num_problem_clauses)
        assumed: list[int] = []
        for literal in assumptions or ():
            if literal == 0 or abs(literal) > self.num_vars:
                raise ValueError(f"assumption {literal} is not in this solver's pool")
            assumed.append(self._encode(literal))

        def result(
            status: str,
            model: dict[int, bool] | None = None,
            under_assumptions: bool = False,
        ) -> SolveResult:
            elapsed = time.monotonic() - start
            if self.telemetry is not None:
                self._sample_telemetry(conflicts, decisions, restarts)
                if elapsed > 0:
                    self._tele_rate.set(conflicts / elapsed)
            return SolveResult(
                status=status,
                model=model,
                stats=SolverStats(
                    conflicts=conflicts,
                    decisions=decisions,
                    propagations=self.propagation_count,
                    restarts=restarts,
                ),
                elapsed_s=elapsed,
                under_assumptions=under_assumptions,
                learned_clauses=len(self.learned) + self.learned_binaries,
            )

        # A previous call may have left the trail at a decision level.
        self._backtrack(0)
        if self.root_conflict:
            return result(UNSAT)
        if self._propagate():
            self.root_conflict = True
            return result(UNSAT)

        restart_limit = luby(1) * self.restart_base
        conflicts_since_restart = 0
        assign = self.assign

        while True:
            conflict = self._propagate()
            if conflict:
                conflicts += 1
                conflicts_since_restart += 1
                if len(self.trail_lim) == 0:
                    self.root_conflict = True
                    return result(UNSAT)
                learnt, backtrack_level = self._analyze(conflict)
                self._backtrack(backtrack_level)
                self._record_learnt(learnt)
                self._decay_activities()
                self.clause_inc *= 1.001

                if max_conflicts is not None and conflicts >= max_conflicts:
                    return result(UNKNOWN)
                if deadline is not None and conflicts % 64 == 0 and time.monotonic() > deadline:
                    return result(UNKNOWN)
                continue

            if conflicts_since_restart >= restart_limit:
                restarts += 1
                conflicts_since_restart = 0
                restart_limit = luby(restarts + 1) * self.restart_base
                self._backtrack(0)
                if len(self.learned) > max_learned:
                    self._reduce_learned()
                if self.telemetry is not None:
                    self._sample_telemetry(conflicts, decisions, restarts)
                    progress = getattr(self.telemetry, "progress", None)
                    if progress is not None:
                        # Restart boundaries are the only hot-loop touch
                        # point, and the bus throttles further — most
                        # calls cost one monotonic-clock read.
                        elapsed = time.monotonic() - start
                        progress.heartbeat(
                            conflicts=conflicts,
                            conflicts_per_s=(round(conflicts / elapsed, 1)
                                             if elapsed > 0 else 0.0),
                            elapsed_s=round(elapsed, 3),
                        )
                continue

            if len(self.trail_lim) < len(assumed):
                # Assert the next assumption as a pseudo-decision.  An
                # already-true assumption still opens its own (empty)
                # decision level so backtracking bookkeeping stays aligned
                # with the assumption index.
                encoded = assumed[len(self.trail_lim)]
                value = assign[encoded]
                if value == _FALSE:
                    return result(UNSAT, under_assumptions=True)
                self.trail_lim.append(len(self.trail))
                if value == _FREE:
                    self._enqueue(encoded, 0)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                saved_phase = self.saved_phase
                # Unconstrained variables are never decided; they take
                # their saved phase, exactly as a decision on them would.
                model = {
                    v: saved_phase[v] if assign[v << 1] == _FREE
                    else assign[v << 1] == _TRUE
                    for v in range(1, self.num_vars + 1)
                }
                return result(SAT, model)
            decisions += 1
            self.trail_lim.append(len(self.trail))
            encoded = (variable << 1) | (0 if self.saved_phase[variable] else 1)
            self._enqueue(encoded, 0)


def solve_formula(
    formula: CnfFormula,
    max_conflicts: int | None = None,
    time_budget_s: float | None = None,
    seed_phases: dict[int, bool] | None = None,
    assumptions: "list[int] | tuple[int, ...] | None" = None,
) -> SolveResult:
    """Convenience wrapper: build a fresh :class:`CdclSolver` and run it."""
    return CdclSolver(formula, seed_phases=seed_phases).solve(
        max_conflicts=max_conflicts,
        time_budget_s=time_budget_s,
        assumptions=assumptions,
    )
