"""Conflict-driven clause learning (CDCL) SAT solver.

This is the stand-in for Kissat/CaDiCaL in the paper's toolchain — this
environment has no external solver, so the substrate is built from scratch.
The implementation follows the MiniSat architecture: two-literal watches,
first-UIP conflict analysis, VSIDS branching with phase saving, Luby
restarts and activity/LBD-based learned-clause reduction.  It is a complete
solver: given enough budget it returns ``SAT`` with a model or ``UNSAT``;
with a conflict or wall-clock budget it may return ``UNKNOWN``, which the
descent loop in :mod:`repro.core.descent` treats as "stop tightening".

The solver is **incremental**: :meth:`CdclSolver.solve` may be called many
times on one instance, optionally under *assumptions* (literals held fixed
for that call only, MiniSat's ``solve(assumps)``), and clauses may be added
between calls with :meth:`CdclSolver.add_clause`.  Learned clauses, saved
phases and branching activities all survive across calls, which is what
makes the weight-descent ladder in :mod:`repro.core.descent` cheap: one
CNF, one clause database, a tightening bound expressed as a one-literal
assumption per step.

Branching, restarts and phase polarity are parameterizable so a portfolio
(:mod:`repro.parallel.portfolio`) can race diversified copies of the same
instance; the defaults reproduce the original single-configuration solver
exactly.

Literals are DIMACS integers at the API boundary and are encoded internally
as ``2*v`` (positive) / ``2*v + 1`` (negative) for array indexing.
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass

from repro.sat.cnf import CnfFormula

SAT = "SAT"
UNSAT = "UNSAT"
UNKNOWN = "UNKNOWN"

_ACTIVITY_RESCALE = 1e100
_ACTIVITY_DECAY = 0.95
_RESTART_BASE = 128


@dataclass
class SolveResult:
    """Outcome of a solver run.

    ``under_assumptions`` distinguishes an ``UNSAT`` that only holds for
    the assumption set of that call from a proof that the formula itself
    is unsatisfiable (``False``).  The counters are per-call, not
    lifetime: an incremental solver resets them at each :meth:`solve`.
    """

    status: str
    model: dict[int, bool] | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    elapsed_s: float = 0.0
    under_assumptions: bool = False
    learned_clauses: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT


class _Clause:
    """Mutable clause: positions 0/1 are the watched literals."""

    __slots__ = ("lits", "learned", "activity", "lbd")

    def __init__(self, lits: list[int], learned: bool = False):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0
        self.lbd = 0


def luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-based ``index``)."""
    if index < 1:
        raise ValueError("luby index is 1-based")
    position = index - 1
    size = 1
    exponent = 0
    while size < position + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != position:
        size = (size - 1) >> 1
        exponent -= 1
        position %= size
    return 1 << exponent


class CdclSolver:
    """Incremental CDCL solver over a :class:`CnfFormula`.

    Args:
        formula: the CNF instance; not mutated.
        seed_phases: optional initial saved phases ``{variable: bool}`` —
            warm-starting descent iterations near the previous model.
        restart_base: Luby restart multiplier (conflicts per unit).
        activity_decay: VSIDS decay factor in ``(0, 1)``.
        phase_default: polarity branched first for variables without a
            saved phase (``False`` reproduces the original solver).
        random_seed: seed for the random-branching RNG; ``None`` disables
            random branching regardless of ``random_branch_freq``.
        random_branch_freq: probability a decision picks a uniformly
            random unassigned variable instead of the VSIDS maximum.

    The four tuning knobs exist for portfolio diversification
    (:mod:`repro.parallel.portfolio`); all defaults together are the
    reference configuration.
    """

    def __init__(
        self,
        formula: CnfFormula,
        seed_phases: dict[int, bool] | None = None,
        *,
        restart_base: int = _RESTART_BASE,
        activity_decay: float = _ACTIVITY_DECAY,
        phase_default: bool = False,
        random_seed: int | None = None,
        random_branch_freq: float = 0.0,
    ):
        self.num_vars = formula.num_variables
        n = self.num_vars
        self.assign_lit = [0] * (2 * n + 2)   # per encoded literal: 1 true, -1 false, 0 free
        self.level = [0] * (n + 1)
        self.reason: list[_Clause | None] = [None] * (n + 1)
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.watches: list[list[_Clause]] = [[] for _ in range(2 * n + 2)]
        self.activity = [0.0] * (n + 1)
        self.var_inc = 1.0
        self.saved_phase = [phase_default] * (n + 1)
        self.order_heap: list[tuple[float, int]] = [(0.0, v) for v in range(1, n + 1)]
        heapq.heapify(self.order_heap)
        self.clauses: list[_Clause] = []
        self.learned: list[_Clause] = []
        self.clause_inc = 1.0
        self.root_conflict = False
        self.propagation_count = 0
        self.restart_base = restart_base
        self.activity_decay = activity_decay
        if not 0.0 <= random_branch_freq <= 1.0:
            raise ValueError("random_branch_freq must lie in [0, 1]")
        self.random_branch_freq = random_branch_freq if random_seed is not None else 0.0
        self._rng = random.Random(random_seed) if random_seed is not None else None

        if seed_phases:
            for variable, phase in seed_phases.items():
                if 1 <= variable <= n:
                    self.saved_phase[variable] = phase

        for clause_lits in formula.clauses():
            self._add_problem_clause(clause_lits)

    # -- incremental interface -------------------------------------------------

    def add_clause(self, literals) -> None:
        """Add one DIMACS clause to the live instance (incremental use).

        Valid between :meth:`solve` calls: the solver backtracks to the
        root level, installs the clause, and performs any root-level
        propagation it triggers.  Clauses over variables the solver does
        not know are rejected — the variable pool is fixed at
        construction.
        """
        clause = list(literals)
        for literal in clause:
            if literal == 0 or abs(literal) > self.num_vars:
                raise ValueError(f"literal {literal} is not in this solver's pool")
        self._backtrack(0)
        self._add_problem_clause(clause)

    def set_phases(self, phases: dict[int, bool]) -> None:
        """Overwrite saved phases (warm-start hints) for the given variables."""
        for variable, phase in phases.items():
            if 1 <= variable <= self.num_vars:
                self.saved_phase[variable] = phase

    # -- literal helpers ------------------------------------------------------

    @staticmethod
    def _encode(literal: int) -> int:
        return (literal << 1) if literal > 0 else ((-literal) << 1) | 1

    def _value(self, encoded: int) -> int:
        return self.assign_lit[encoded]

    # -- setup ------------------------------------------------------------------

    def _add_problem_clause(self, dimacs_lits) -> None:
        seen: dict[int, int] = {}
        lits: list[int] = []
        for literal in dimacs_lits:
            encoded = self._encode(literal)
            variable = encoded >> 1
            previous = seen.get(variable)
            if previous is None:
                seen[variable] = encoded
                lits.append(encoded)
            elif previous != encoded:
                return  # tautology: v OR NOT v
        # Drop root-falsified literals eagerly; keep semantics identical.
        lits = [lit for lit in lits if not (self._value(lit) == -1 and self.level[lit >> 1] == 0)]
        if any(self._value(lit) == 1 and self.level[lit >> 1] == 0 for lit in lits):
            return
        if not lits:
            self.root_conflict = True
            return
        if len(lits) == 1:
            if self._value(lits[0]) == -1:
                self.root_conflict = True
            elif self._value(lits[0]) == 0:
                self._enqueue(lits[0], None)
                if self._propagate() is not None:
                    self.root_conflict = True
            return
        clause = _Clause(lits)
        self.clauses.append(clause)
        self.watches[lits[0]].append(clause)
        self.watches[lits[1]].append(clause)

    # -- assignment / propagation --------------------------------------------------

    def _enqueue(self, encoded: int, reason: _Clause | None) -> None:
        variable = encoded >> 1
        self.assign_lit[encoded] = 1
        self.assign_lit[encoded ^ 1] = -1
        self.level[variable] = len(self.trail_lim)
        self.reason[variable] = reason
        self.trail.append(encoded)

    def _propagate(self) -> _Clause | None:
        propagations = 0
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            propagations += 1
            falsified = lit ^ 1
            old_watchers = self.watches[falsified]
            kept: list[_Clause] = []
            self.watches[falsified] = kept
            assign_lit = self.assign_lit
            for position, clause in enumerate(old_watchers):
                lits = clause.lits
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if assign_lit[first] == 1:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if assign_lit[lits[k]] != -1:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.watches[lits[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if assign_lit[first] == -1:
                    kept.extend(old_watchers[position + 1:])
                    self.propagation_count += propagations
                    return clause
                self._enqueue(first, clause)
        self.propagation_count += propagations
        return None

    # -- branching ------------------------------------------------------------------

    def _bump_variable(self, variable: int) -> None:
        self.activity[variable] += self.var_inc
        if self.activity[variable] > _ACTIVITY_RESCALE:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        heapq.heappush(self.order_heap, (-self.activity[variable], variable))

    def _decay_activities(self) -> None:
        self.var_inc /= self.activity_decay

    def _pick_branch_variable(self) -> int | None:
        if self._rng is not None and self._rng.random() < self.random_branch_freq:
            # Diversification: a bounded number of uniform draws; falls
            # through to VSIDS when they all land on assigned variables.
            for _ in range(8):
                variable = self._rng.randint(1, self.num_vars)
                if self.assign_lit[variable << 1] == 0:
                    return variable
        while self.order_heap:
            _, variable = heapq.heappop(self.order_heap)
            if self.assign_lit[variable << 1] == 0:
                return variable
        for variable in range(1, self.num_vars + 1):
            if self.assign_lit[variable << 1] == 0:
                return variable
        return None

    # -- conflict analysis --------------------------------------------------------------

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """First-UIP analysis with clause minimization.

        Returns (learnt clause, backtrack level).
        """
        learnt: list[int] = [0]
        seen = bytearray(self.num_vars + 1)
        current_level = len(self.trail_lim)
        path_count = 0
        resolved_lit = -1
        index = len(self.trail) - 1
        clause = conflict

        while True:
            clause.activity += self.clause_inc
            start = 0 if resolved_lit == -1 else 1
            for encoded in clause.lits[start:]:
                variable = encoded >> 1
                if not seen[variable] and self.level[variable] > 0:
                    seen[variable] = 1
                    self._bump_variable(variable)
                    if self.level[variable] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(encoded)
            while not seen[self.trail[index] >> 1]:
                index -= 1
            resolved_lit = self.trail[index]
            variable = resolved_lit >> 1
            path_count -= 1
            index -= 1
            if path_count <= 0:
                break
            clause = self.reason[variable]

        learnt[0] = resolved_lit ^ 1

        # Minimization: drop literals whose reasons lie entirely inside the
        # clause (MiniSat's recursive litRedundant with abstract levels).
        abstract_levels = 0
        for encoded in learnt[1:]:
            abstract_levels |= 1 << (self.level[encoded >> 1] & 31)
        minimized = [learnt[0]]
        for encoded in learnt[1:]:
            if self.reason[encoded >> 1] is None or not self._literal_redundant(
                encoded, seen, abstract_levels
            ):
                minimized.append(encoded)
        learnt = minimized

        if len(learnt) == 1:
            return learnt, 0
        # Find the second-highest decision level and watch that literal.
        max_index = 1
        for k in range(2, len(learnt)):
            if self.level[learnt[k] >> 1] > self.level[learnt[max_index] >> 1]:
                max_index = k
        learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
        return learnt, self.level[learnt[1] >> 1]

    def _literal_redundant(self, literal: int, seen: bytearray, abstract_levels: int) -> bool:
        """True when ``literal``'s implication closure lies inside the learnt
        clause — it can then be removed without weakening the clause."""
        stack = [literal]
        newly_marked: list[int] = []
        while stack:
            top = stack.pop()
            reason = self.reason[top >> 1]
            for encoded in reason.lits[1:]:
                variable = encoded >> 1
                if seen[variable] or self.level[variable] == 0:
                    continue
                if (
                    self.reason[variable] is not None
                    and (1 << (self.level[variable] & 31)) & abstract_levels
                ):
                    seen[variable] = 1
                    newly_marked.append(variable)
                    stack.append(encoded)
                else:
                    for marked in newly_marked:
                        seen[marked] = 0
                    return False
        return True

    def _backtrack(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for encoded in reversed(self.trail[boundary:]):
            variable = encoded >> 1
            self.assign_lit[encoded] = 0
            self.assign_lit[encoded ^ 1] = 0
            self.reason[variable] = None
            self.saved_phase[variable] = (encoded & 1) == 0
            heapq.heappush(self.order_heap, (-self.activity[variable], variable))
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    def _record_learnt(self, learnt: list[int]) -> None:
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, learned=True)
        clause.lbd = len({self.level[encoded >> 1] for encoded in learnt})
        self.learned.append(clause)
        self.watches[learnt[0]].append(clause)
        self.watches[learnt[1]].append(clause)
        self._enqueue(learnt[0], clause)

    def _reduce_learned(self) -> None:
        locked = {id(self.reason[encoded >> 1]) for encoded in self.trail if self.reason[encoded >> 1]}
        self.learned.sort(key=lambda c: (c.lbd, -c.activity))
        keep_count = len(self.learned) // 2
        keep, drop = self.learned[:keep_count], self.learned[keep_count:]
        survivors = [clause for clause in drop if id(clause) in locked or clause.lbd <= 2]
        removed = {id(clause) for clause in drop if id(clause) not in locked and clause.lbd > 2}
        self.learned = keep + survivors
        if removed:
            for watch_list in self.watches:
                watch_list[:] = [clause for clause in watch_list if id(clause) not in removed]

    # -- main loop -----------------------------------------------------------------------

    def solve(
        self,
        max_conflicts: int | None = None,
        time_budget_s: float | None = None,
        assumptions: "list[int] | tuple[int, ...] | None" = None,
    ) -> SolveResult:
        """Run the search until SAT/UNSAT or a budget is exhausted.

        May be called repeatedly on one instance; learned clauses, phases
        and activities carry over, so related calls get cheaper.

        Args:
            max_conflicts: per-call conflict budget (``None`` unlimited).
            time_budget_s: per-call wall-clock budget.  Note that budgets
                make the *stopping point* wall-clock-dependent; conflict
                budgets keep the call fully deterministic.
            assumptions: DIMACS literals held true for this call only.
                ``UNSAT`` with ``under_assumptions=True`` means no model
                extends the assumptions; the formula itself may still be
                satisfiable.  A model returned under assumptions always
                satisfies them.
        """
        start = time.monotonic()
        deadline = None if time_budget_s is None else start + time_budget_s
        self.propagation_count = 0
        conflicts = 0
        decisions = 0
        restarts = 0
        max_learned = max(4000, 2 * len(self.clauses))
        assumed: list[int] = []
        for literal in assumptions or ():
            if literal == 0 or abs(literal) > self.num_vars:
                raise ValueError(f"assumption {literal} is not in this solver's pool")
            assumed.append(self._encode(literal))

        def result(
            status: str,
            model: dict[int, bool] | None = None,
            under_assumptions: bool = False,
        ) -> SolveResult:
            return SolveResult(
                status=status,
                model=model,
                conflicts=conflicts,
                decisions=decisions,
                propagations=self.propagation_count,
                restarts=restarts,
                elapsed_s=time.monotonic() - start,
                under_assumptions=under_assumptions,
                learned_clauses=len(self.learned),
            )

        # A previous call may have left the trail at a decision level.
        self._backtrack(0)
        if self.root_conflict:
            return result(UNSAT)
        if self._propagate() is not None:
            self.root_conflict = True
            return result(UNSAT)

        restart_limit = luby(1) * self.restart_base
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                conflicts_since_restart += 1
                if len(self.trail_lim) == 0:
                    self.root_conflict = True
                    return result(UNSAT)
                learnt, backtrack_level = self._analyze(conflict)
                self._backtrack(backtrack_level)
                self._record_learnt(learnt)
                self._decay_activities()
                self.clause_inc *= 1.001

                if max_conflicts is not None and conflicts >= max_conflicts:
                    return result(UNKNOWN)
                if deadline is not None and conflicts % 64 == 0 and time.monotonic() > deadline:
                    return result(UNKNOWN)
                continue

            if conflicts_since_restart >= restart_limit:
                restarts += 1
                conflicts_since_restart = 0
                restart_limit = luby(restarts + 1) * self.restart_base
                self._backtrack(0)
                if len(self.learned) > max_learned:
                    self._reduce_learned()
                continue

            if len(self.trail_lim) < len(assumed):
                # Assert the next assumption as a pseudo-decision.  An
                # already-true assumption still opens its own (empty)
                # decision level so backtracking bookkeeping stays aligned
                # with the assumption index.
                encoded = assumed[len(self.trail_lim)]
                value = self.assign_lit[encoded]
                if value == -1:
                    return result(UNSAT, under_assumptions=True)
                self.trail_lim.append(len(self.trail))
                if value == 0:
                    self._enqueue(encoded, None)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                model = {
                    v: self.assign_lit[v << 1] == 1
                    for v in range(1, self.num_vars + 1)
                }
                return result(SAT, model)
            decisions += 1
            self.trail_lim.append(len(self.trail))
            encoded = (variable << 1) | (0 if self.saved_phase[variable] else 1)
            self._enqueue(encoded, None)


def solve_formula(
    formula: CnfFormula,
    max_conflicts: int | None = None,
    time_budget_s: float | None = None,
    seed_phases: dict[int, bool] | None = None,
    assumptions: "list[int] | tuple[int, ...] | None" = None,
) -> SolveResult:
    """Convenience wrapper: build a fresh :class:`CdclSolver` and run it."""
    return CdclSolver(formula, seed_phases=seed_phases).solve(
        max_conflicts=max_conflicts,
        time_budget_s=time_budget_s,
        assumptions=assumptions,
    )
