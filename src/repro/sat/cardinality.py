"""Cardinality constraints: ``sum(literals) <= bound`` in pure CNF.

Fermihedral's weight objective (Sections 3.6/3.7) is optimized by repeatedly
asserting "total Pauli weight < w" and re-solving.  The sequential-counter
encoding of Sinz (2005) used here needs ``O(n * bound)`` auxiliary variables
and clauses, keeps unit propagation strong (it is arc-consistent), and —
matching the paper's design goal — stays entirely within propositional
logic, with no arithmetic theory solver.
"""

from __future__ import annotations

from typing import Sequence

from repro.sat.cnf import CnfFormula


def add_at_most_k(formula: CnfFormula, literals: Sequence[int], bound: int) -> None:
    """Constrain at most ``bound`` of ``literals`` to be true.

    ``bound >= len(literals)`` is a no-op; ``bound == 0`` forces every
    literal false; otherwise the sequential counter introduces registers
    ``s[i][j]`` = "at least j+1 of the first i+1 literals are true".
    """
    count = len(literals)
    if bound < 0:
        raise ValueError("bound must be non-negative")
    if bound >= count:
        return
    if bound == 0:
        for literal in literals:
            formula.add_unit(-literal)
        return

    # registers[i][j] <=> at least (j+1) of literals[0..i] are true.
    # The last literal needs no register row of its own: only the
    # overflow clause below ever reads row ``count - 2``, so allocating
    # row ``count - 1`` would waste ``bound`` variables and ``2 * bound``
    # clauses per constraint.
    registers = [[formula.new_variable() for _ in range(bound)] for _ in range(count - 1)]

    formula.add_clause((-literals[0], registers[0][0]))
    for j in range(1, bound):
        formula.add_unit(-registers[0][j])

    for i in range(1, count - 1):
        formula.add_clause((-literals[i], registers[i][0]))
        formula.add_clause((-registers[i - 1][0], registers[i][0]))
        for j in range(1, bound):
            formula.add_clause((-literals[i], -registers[i - 1][j - 1], registers[i][j]))
            formula.add_clause((-registers[i - 1][j], registers[i][j]))
        formula.add_clause((-literals[i], -registers[i - 1][bound - 1]))
    formula.add_clause((-literals[count - 1], -registers[count - 2][bound - 1]))


def predict_sequential_ladder(count: int, max_bound: int) -> tuple[int, int]:
    """Exact ``(auxiliary_variables, clauses)`` of :func:`add_at_most_ladder`.

    Lets the encoding chooser in
    :meth:`repro.core.encoder.FermihedralEncoder.weight_ladder` compare
    the sequential counter against the totalizer
    (:func:`repro.sat.totalizer.predict_totalizer_ladder`) without
    building either.
    """
    width = min(max_bound + 1, count)
    tautology = 1 if max_bound + 1 > width else 0
    if width == 0:
        return tautology, tautology
    variables = tautology + count * width
    clauses = tautology + width + (count - 1) * 2 * width
    return variables, clauses


def add_at_most_ladder(
    formula: CnfFormula, literals: Sequence[int], max_bound: int
) -> list[int]:
    """Sequential counter whose bound is chosen per solve call, not baked in.

    Builds the Sinz registers for ``literals`` once, with **no** overflow
    clauses, and returns ``selectors`` of length ``max_bound + 1`` where
    assuming ``selectors[b]`` (as a solver assumption, or by adding it as
    a unit clause) enforces ``sum(literals) <= b``.  This is the standard
    incremental-SAT idiom for descending cardinality bounds: one clause
    database serves every rung of the weight ladder, so learned clauses
    survive from one bound to the next.

    Bounds ``b >= len(literals)`` are vacuous; their selector is a fresh
    always-true literal, so callers can index ``selectors`` uniformly.
    """
    count = len(literals)
    if max_bound < 0:
        raise ValueError("max_bound must be non-negative")
    width = min(max_bound + 1, count)

    tautology: int | None = None
    if max_bound + 1 > width:
        tautology = formula.new_variable()
        formula.add_unit(tautology)
    if width == 0:
        return [tautology] * (max_bound + 1)

    # registers[i][j] <=> at least (j+1) of literals[0..i] are true
    registers = [[formula.new_variable() for _ in range(width)] for _ in range(count)]

    formula.add_clause((-literals[0], registers[0][0]))
    for j in range(1, width):
        formula.add_unit(-registers[0][j])

    for i in range(1, count):
        formula.add_clause((-literals[i], registers[i][0]))
        formula.add_clause((-registers[i - 1][0], registers[i][0]))
        for j in range(1, width):
            formula.add_clause((-literals[i], -registers[i - 1][j - 1], registers[i][j]))
            formula.add_clause((-registers[i - 1][j], registers[i][j]))

    selectors = [-registers[count - 1][b] for b in range(width)]
    selectors.extend([tautology] * (max_bound + 1 - width))
    return selectors


def add_weighted_ladder(
    formula: CnfFormula,
    literals: Sequence[int],
    weights: Sequence[int],
    max_bound: int,
) -> list[int]:
    """Weighted variant of :func:`add_at_most_ladder`.

    Assuming ``selectors[b]`` enforces ``sum(weights[i] * literals[i]) <= b``
    — each literal repeated ``weights[i]`` times in the shared counter,
    mirroring :func:`add_at_most_k_weighted`.
    """
    if len(weights) != len(literals):
        raise ValueError("weights and literals must have equal length")
    if any(weight < 0 for weight in weights):
        raise ValueError("weights must be non-negative")
    expanded: list[int] = []
    for literal, weight in zip(literals, weights):
        expanded.extend([literal] * weight)
    return add_at_most_ladder(formula, expanded, max_bound)


def add_at_most_k_weighted(
    formula: CnfFormula,
    literals: Sequence[int],
    weights: Sequence[int],
    bound: int,
) -> None:
    """Constrain ``sum(weights[i] * literals[i]) <= bound``.

    Implemented by repeating each literal ``weights[i]`` times in a plain
    sequential counter — adequate for the small integer multiplicities that
    arise from duplicated Hamiltonian monomials.
    """
    if len(weights) != len(literals):
        raise ValueError("weights and literals must have equal length")
    if any(weight < 0 for weight in weights):
        raise ValueError("weights must be non-negative")
    expanded: list[int] = []
    for literal, weight in zip(literals, weights):
        expanded.extend([literal] * weight)
    add_at_most_k(formula, expanded, bound)
