"""Tseitin gadgets: definitional CNF encodings of Boolean gates.

Directly expanding the XOR-heavy Fermihedral constraints to CNF would blow
up exponentially (Section 3.8 of the paper); each helper here introduces one
fresh variable whose truth value is *defined* to equal a gate applied to
input literals, at a constant number of clauses per gate.  Chaining the
binary XOR gadget yields the linear-size parity constraints used by the
anticommutativity and algebraic-independence encodings.
"""

from __future__ import annotations

from typing import Sequence

from repro.sat.cnf import CnfFormula


def encode_and(formula: CnfFormula, a: int, b: int) -> int:
    """Fresh ``g`` with ``g <-> a AND b`` (3 clauses)."""
    gate = formula.new_variable()
    formula.add_clause((-gate, a))
    formula.add_clause((-gate, b))
    formula.add_clause((gate, -a, -b))
    return gate


def encode_or(formula: CnfFormula, a: int, b: int) -> int:
    """Fresh ``g`` with ``g <-> a OR b`` (3 clauses)."""
    gate = formula.new_variable()
    formula.add_clause((gate, -a))
    formula.add_clause((gate, -b))
    formula.add_clause((-gate, a, b))
    return gate


def encode_or_many(formula: CnfFormula, literals: Sequence[int]) -> int:
    """Fresh ``g`` with ``g <-> OR(literals)`` (``len + 1`` clauses)."""
    if not literals:
        raise ValueError("OR over no literals")
    if len(literals) == 1:
        return literals[0]
    gate = formula.new_variable()
    for literal in literals:
        formula.add_clause((gate, -literal))
    formula.add_clause((-gate,) + tuple(literals))
    return gate


def encode_xor(formula: CnfFormula, a: int, b: int) -> int:
    """Fresh ``g`` with ``g <-> a XOR b`` (4 clauses)."""
    gate = formula.new_variable()
    formula.add_clause((-gate, a, b))
    formula.add_clause((-gate, -a, -b))
    formula.add_clause((gate, -a, b))
    formula.add_clause((gate, a, -b))
    return gate


def encode_xor_many(formula: CnfFormula, literals: Sequence[int]) -> int:
    """Fresh ``g`` with ``g <-> XOR(literals)`` via a linear gadget chain."""
    if not literals:
        raise ValueError("XOR over no literals")
    accumulator = literals[0]
    for literal in literals[1:]:
        accumulator = encode_xor(formula, accumulator, literal)
    return accumulator


def assert_xor_true(formula: CnfFormula, literals: Sequence[int]) -> None:
    """Constrain ``XOR(literals) = 1`` (used for string anticommutativity)."""
    formula.add_unit(encode_xor_many(formula, literals))


def assert_or_true(formula: CnfFormula, literals: Sequence[int]) -> None:
    """Constrain ``OR(literals) = 1`` — just the clause itself."""
    formula.add_clause(literals)
