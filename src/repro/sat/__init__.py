"""SAT substrate: CNF construction, Tseitin gadgets, cardinality, CDCL solver."""

from repro.sat.cardinality import (
    add_at_most_k,
    add_at_most_k_weighted,
    add_at_most_ladder,
    add_weighted_ladder,
)
from repro.sat.cnf import CnfFormula, evaluate_clause, evaluate_formula
from repro.sat.dpll import dpll_solve
from repro.sat.enumerate import enumerate_models
from repro.sat.solver import SAT, UNKNOWN, UNSAT, CdclSolver, SolveResult, luby, solve_formula
from repro.sat.tseitin import (
    assert_or_true,
    assert_xor_true,
    encode_and,
    encode_or,
    encode_or_many,
    encode_xor,
    encode_xor_many,
)

__all__ = [
    "SAT",
    "UNKNOWN",
    "UNSAT",
    "CdclSolver",
    "CnfFormula",
    "SolveResult",
    "add_at_most_k",
    "add_at_most_k_weighted",
    "add_at_most_ladder",
    "add_weighted_ladder",
    "assert_or_true",
    "assert_xor_true",
    "dpll_solve",
    "encode_and",
    "encode_or",
    "encode_or_many",
    "encode_xor",
    "encode_xor_many",
    "enumerate_models",
    "evaluate_clause",
    "evaluate_formula",
    "luby",
    "solve_formula",
]
