"""SAT substrate: CNF construction, Tseitin gadgets, cardinality encodings
(sequential counter and totalizer), SatELite-style preprocessing, the
flattened CDCL solver, and DRAT proof logging/checking."""

from repro.sat.cardinality import (
    add_at_most_k,
    add_at_most_k_weighted,
    add_at_most_ladder,
    add_weighted_ladder,
    predict_sequential_ladder,
)
from repro.sat.cnf import CnfFormula, evaluate_clause, evaluate_formula
from repro.sat.dpll import dpll_solve
from repro.sat.drat import (
    ProofCheckResult,
    ProofLog,
    ProofTrace,
    build_trace,
    check_drat,
    check_trace,
    parse_drat,
    serialize_drat,
)
from repro.sat.enumerate import enumerate_models
from repro.sat.preprocess import PreprocessResult, PreprocessStats, preprocess
from repro.sat.solver import (
    SAT,
    UNKNOWN,
    UNSAT,
    CdclSolver,
    SolveResult,
    SolverStats,
    luby,
    solve_formula,
)
from repro.sat.totalizer import (
    add_totalizer_at_most_k,
    add_totalizer_ladder,
    predict_totalizer_ladder,
)
from repro.sat.tseitin import (
    assert_or_true,
    assert_xor_true,
    encode_and,
    encode_or,
    encode_or_many,
    encode_xor,
    encode_xor_many,
)

__all__ = [
    "SAT",
    "UNKNOWN",
    "UNSAT",
    "CdclSolver",
    "CnfFormula",
    "PreprocessResult",
    "PreprocessStats",
    "ProofCheckResult",
    "ProofLog",
    "ProofTrace",
    "SolveResult",
    "SolverStats",
    "add_at_most_k",
    "add_at_most_k_weighted",
    "add_at_most_ladder",
    "add_totalizer_at_most_k",
    "add_totalizer_ladder",
    "add_weighted_ladder",
    "assert_or_true",
    "assert_xor_true",
    "build_trace",
    "check_drat",
    "check_trace",
    "dpll_solve",
    "encode_and",
    "encode_or",
    "encode_or_many",
    "encode_xor",
    "encode_xor_many",
    "enumerate_models",
    "evaluate_clause",
    "evaluate_formula",
    "luby",
    "parse_drat",
    "predict_sequential_ladder",
    "predict_totalizer_ladder",
    "preprocess",
    "serialize_drat",
    "solve_formula",
]
