"""Reference DPLL solver.

A deliberately simple, obviously-correct solver used to cross-validate the
CDCL engine in tests (both must agree on SAT/UNSAT for every random small
formula).  Exponential in the worst case — never use it on real instances.
"""

from __future__ import annotations

from repro.sat.cnf import CnfFormula
from repro.sat.solver import SAT, UNSAT, SolveResult


def _simplify(clauses: list[tuple[int, ...]], literal: int) -> list[tuple[int, ...]] | None:
    """Assign ``literal`` true; return simplified clauses or ``None`` on conflict."""
    simplified: list[tuple[int, ...]] = []
    for clause in clauses:
        if literal in clause:
            continue
        reduced = tuple(lit for lit in clause if lit != -literal)
        if not reduced:
            return None
        simplified.append(reduced)
    return simplified


def _search(clauses: list[tuple[int, ...]], assignment: dict[int, bool]) -> dict[int, bool] | None:
    while True:
        if not clauses:
            return assignment
        unit = next((clause[0] for clause in clauses if len(clause) == 1), None)
        if unit is None:
            break
        clauses = _simplify(clauses, unit)
        if clauses is None:
            return None
        assignment = dict(assignment)
        assignment[abs(unit)] = unit > 0

    literal = clauses[0][0]
    for chosen in (literal, -literal):
        reduced = _simplify(clauses, chosen)
        if reduced is not None:
            extended = dict(assignment)
            extended[abs(chosen)] = chosen > 0
            model = _search(reduced, extended)
            if model is not None:
                return model
    return None


def dpll_solve(formula: CnfFormula) -> SolveResult:
    """Solve by plain DPLL; always terminates with SAT or UNSAT."""
    clauses = [tuple(clause) for clause in formula.clauses()]
    model = _search(clauses, {})
    if model is None:
        return SolveResult(status=UNSAT)
    complete = {v: model.get(v, False) for v in range(1, formula.num_variables + 1)}
    return SolveResult(status=SAT, model=complete)
