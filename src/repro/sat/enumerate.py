"""Model enumeration via blocking clauses.

Used by the Figure-4 experiment, which samples many distinct optimal
encodings: after each model, a clause forbidding that assignment (projected
onto the variables of interest) is added and the solver re-runs.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.sat.cnf import CnfFormula
from repro.sat.solver import solve_formula


def enumerate_models(
    formula: CnfFormula,
    projection: Sequence[int],
    limit: int,
    max_conflicts_per_model: int | None = None,
    time_budget_s: float | None = None,
) -> Iterator[dict[int, bool]]:
    """Yield up to ``limit`` models distinct on the ``projection`` variables.

    The input formula is copied; blocking clauses accumulate on the copy.
    Enumeration stops early on UNSAT (no more models) or when a per-model
    budget expires.
    """
    if not projection:
        raise ValueError("projection must name at least one variable")
    working = formula.copy()
    for _ in range(limit):
        result = solve_formula(
            working,
            max_conflicts=max_conflicts_per_model,
            time_budget_s=time_budget_s,
        )
        if not result.is_sat:
            return
        model = result.model
        yield model
        blocking = [(-variable if model[variable] else variable) for variable in projection]
        working.add_clause(blocking)
