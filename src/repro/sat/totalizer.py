"""Totalizer cardinality encoding (Bailleux & Boutobza 2003).

The sequential counter of :mod:`repro.sat.cardinality` spends
``O(n · k)`` variables on ``sum(literals) <= k``.  The totalizer builds a
balanced merge tree instead: each node carries a unary counter of its
subtree's true-literal count, truncated at ``k + 1`` (counts beyond the
bound saturate — their exact value can never matter).  For small bounds
over many literals this is substantially smaller, and unit propagation is
just as strong (the encoding is arc-consistent for at-most-k).

Only the "counts propagate upward" direction is emitted —
``(≥ i in left) ∧ (≥ j in right) → (≥ i+j here)`` — which is exactly what
an upper bound needs: forbidding the root's ``≥ b+1`` output propagates
down to block every way of exceeding ``b``.

:func:`add_totalizer_ladder` mirrors the selector contract of
:func:`repro.sat.cardinality.add_at_most_ladder`: one shared counter,
no baked-in bound, and a selector literal per bound ``b`` whose
assumption enforces ``sum <= b`` — the incremental-descent idiom.
:func:`repro.core.encoder.FermihedralEncoder.weight_ladder` chooses
between the two encodings by predicted clause count
(:func:`predict_totalizer_ladder` vs
:func:`repro.sat.cardinality.predict_sequential_ladder`).
"""

from __future__ import annotations

from typing import Sequence

from repro.sat.cnf import CnfFormula


def _merge_pair_count(left: int, right: int, cap: int) -> int:
    """Number of clauses merging child counters of ``left``/``right``
    outputs under saturation cap ``cap``: pairs ``(i, j)`` with
    ``0 <= i <= left``, ``0 <= j <= right`` and ``1 <= i + j <= cap``."""
    total = 0
    for i in range(0, min(left, cap) + 1):
        total += min(right, cap - i) + 1
    return total - 1  # (0, 0) is not a clause


def predict_totalizer_ladder(count: int, max_bound: int) -> tuple[int, int]:
    """Exact ``(auxiliary_variables, clauses)`` of the totalizer ladder.

    Simulates the merge schedule of :func:`add_totalizer_ladder` without
    allocating anything, so the encoding chooser can compare costs first.
    """
    if count == 0:
        return (1, 1) if max_bound >= 0 else (0, 0)
    cap = min(max_bound + 1, count)
    if cap == 0:
        # max_bound == -1 is rejected by the builders; unreachable.
        return (0, 0)
    variables = 1 if max_bound + 1 > count else 0  # tautology literal
    clauses = variables
    sizes = [1] * count
    while len(sizes) > 1:
        merged: list[int] = []
        for index in range(0, len(sizes) - 1, 2):
            left, right = sizes[index], sizes[index + 1]
            output = min(left + right, cap)
            variables += output
            clauses += _merge_pair_count(left, right, cap)
            merged.append(output)
        if len(sizes) % 2:
            merged.append(sizes[-1])
        sizes = merged
    return variables, clauses


def _build_tree(
    formula: CnfFormula, literals: Sequence[int], cap: int
) -> list[int]:
    """Merge-tree construction; returns the root's output literals
    ``outputs[j]`` ⇐ "at least ``j + 1`` of ``literals`` are true"."""
    layer: list[list[int]] = [[literal] for literal in literals]
    while len(layer) > 1:
        merged: list[list[int]] = []
        for index in range(0, len(layer) - 1, 2):
            left, right = layer[index], layer[index + 1]
            size = min(len(left) + len(right), cap)
            outputs = [formula.new_variable() for _ in range(size)]
            for i in range(0, min(len(left), cap) + 1):
                for j in range(0, min(len(right), cap - i) + 1):
                    if i + j == 0:
                        continue
                    clause = []
                    if i > 0:
                        clause.append(-left[i - 1])
                    if j > 0:
                        clause.append(-right[j - 1])
                    clause.append(outputs[i + j - 1])
                    formula.add_clause(clause)
            merged.append(outputs)
        if len(layer) % 2:
            merged.append(layer[-1])
        layer = merged
    return layer[0]


def add_totalizer_ladder(
    formula: CnfFormula, literals: Sequence[int], max_bound: int
) -> list[int]:
    """Totalizer counter whose bound is chosen per solve call.

    Builds the merge tree once (saturated at ``max_bound + 1``) and
    returns ``selectors`` of length ``max_bound + 1``: assuming
    ``selectors[b]`` (or adding it as a unit) enforces
    ``sum(literals) <= b``.  Bounds ``b >= len(literals)`` are vacuous
    and share a fresh always-true literal, exactly like
    :func:`repro.sat.cardinality.add_at_most_ladder`.
    """
    count = len(literals)
    if max_bound < 0:
        raise ValueError("max_bound must be non-negative")
    width = min(max_bound + 1, count)

    tautology: int | None = None
    if max_bound + 1 > width:
        tautology = formula.new_variable()
        formula.add_unit(tautology)
    if width == 0:
        return [tautology] * (max_bound + 1)

    outputs = _build_tree(formula, literals, cap=width)
    selectors = [-outputs[b] for b in range(width)]
    selectors.extend([tautology] * (max_bound + 1 - width))
    return selectors


def add_totalizer_at_most_k(
    formula: CnfFormula, literals: Sequence[int], bound: int
) -> None:
    """Constrain at most ``bound`` of ``literals`` to be true (totalizer).

    Drop-in alternative to :func:`repro.sat.cardinality.add_at_most_k`
    with the same edge-case semantics.
    """
    count = len(literals)
    if bound < 0:
        raise ValueError("bound must be non-negative")
    if bound >= count:
        return
    if bound == 0:
        for literal in literals:
            formula.add_unit(-literal)
        return
    outputs = _build_tree(formula, literals, cap=bound + 1)
    formula.add_unit(-outputs[bound])
